//! Typed causal edges between trace events.
//!
//! The timeline records *what* happened and *when*; this module records
//! *why* a span waited. Edges are emitted at the source while the
//! simulation runs — the runtime links the events it pushes, and the
//! device/TEE/UVM layers type the dependencies their scheduling results
//! imply — so the DAG is constructed during simulation rather than
//! reverse-engineered from timestamps afterwards.

use hcc_types::json::{Json, ToJson};
use hcc_types::SimDuration;

/// Index of an event inside its [`crate::Timeline`], handed out by
/// [`crate::Timeline::push`]. Ids are dense and insertion-ordered, so an
/// edge's endpoints can always be resolved back to events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub usize);

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Why the target event could not begin (or finish) earlier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EdgeKind {
    /// Launch → its kernel: ring service, dispatch, and stream ordering
    /// separate the doorbell from execution (the KQT leg).
    LaunchToExec,
    /// Program order on one stream: the previous operation gates the next.
    StreamOrder,
    /// A copy feeding a dependent kernel on the same stream.
    CopyToKernel,
    /// CPU AES-GCM staging gating a CC transfer.
    CryptoToStaging,
    /// A hypercall (e.g. `dma_map`) issued on behalf of a staged copy.
    HypercallToStaging,
    /// Bounce-pool reservation gating a staging chunk.
    BounceToStaging,
    /// An injected fault starting its recovery chain.
    FaultToRetry,
    /// One retry backing off into the next.
    RetryChain,
    /// The final retry releasing the recovered operation.
    RetryToVictim,
    /// UVM far-fault service (migration) resuming its kernel.
    MigrationToResume,
    /// A blocking host sync released by a device-side completion.
    CompletionToSync,
}

impl EdgeKind {
    /// Short tag used in exports.
    pub fn tag(&self) -> &'static str {
        match self {
            EdgeKind::LaunchToExec => "launch_to_exec",
            EdgeKind::StreamOrder => "stream_order",
            EdgeKind::CopyToKernel => "copy_to_kernel",
            EdgeKind::CryptoToStaging => "crypto_to_staging",
            EdgeKind::HypercallToStaging => "hypercall_to_staging",
            EdgeKind::BounceToStaging => "bounce_to_staging",
            EdgeKind::FaultToRetry => "fault_to_retry",
            EdgeKind::RetryChain => "retry_chain",
            EdgeKind::RetryToVictim => "retry_to_victim",
            EdgeKind::MigrationToResume => "migration_to_resume",
            EdgeKind::CompletionToSync => "completion_to_sync",
        }
    }
}

/// One typed dependency: `to` could not proceed before `from` (plus
/// `wait`, the scheduling delay the edge carried, e.g. ring wait or
/// reservation cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalEdge {
    /// Gating event.
    pub from: EventId,
    /// Gated event.
    pub to: EventId,
    /// Dependency type.
    pub kind: EdgeKind,
    /// Delay attributable to this edge (zero when purely ordering).
    pub wait: SimDuration,
}

impl CausalEdge {
    /// Creates an ordering edge with no attributed delay.
    pub fn new(from: EventId, to: EventId, kind: EdgeKind) -> Self {
        CausalEdge {
            from,
            to,
            kind,
            wait: SimDuration::ZERO,
        }
    }

    /// Builder-style delay annotation.
    pub fn with_wait(mut self, wait: SimDuration) -> Self {
        self.wait = wait;
        self
    }
}

/// The causal DAG collected alongside a [`crate::Timeline`].
///
/// Collection is opt-in (mirroring the metrics plane): a disabled graph
/// drops every edge so the hot path costs one branch, and — like metrics
/// — enabling it must never perturb the virtual clock or RNG.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CausalGraph {
    enabled: bool,
    edges: Vec<CausalEdge>,
}

impl CausalGraph {
    /// Creates a graph; `enabled` governs whether edges are kept.
    pub fn new(enabled: bool) -> Self {
        CausalGraph {
            enabled,
            edges: Vec::new(),
        }
    }

    /// Whether edges are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one edge (no-op while disabled).
    pub fn push(&mut self, edge: CausalEdge) {
        if self.enabled {
            self.edges.push(edge);
        }
    }

    /// Records every edge in `edges` (no-op while disabled).
    pub fn extend(&mut self, edges: impl IntoIterator<Item = CausalEdge>) {
        if self.enabled {
            self.edges.extend(edges);
        }
    }

    /// All recorded edges, in emission order.
    pub fn edges(&self) -> &[CausalEdge] {
        &self.edges
    }

    /// Number of recorded edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges were recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Edges pointing *into* `to` (its direct causes).
    pub fn predecessors(&self, to: EventId) -> impl Iterator<Item = &CausalEdge> {
        self.edges.iter().filter(move |e| e.to == to)
    }

    /// Checks the DAG invariant: since events are pushed in causal order,
    /// every edge must point from an earlier-created event to a
    /// later-created one (`from < to`), which also rules out cycles.
    pub fn is_acyclic(&self) -> bool {
        self.edges.iter().all(|e| e.from < e.to)
    }
}

impl ToJson for EventId {
    fn to_json(&self) -> Json {
        Json::U64(self.0 as u64)
    }
}

impl ToJson for EdgeKind {
    fn to_json(&self) -> Json {
        Json::Str(self.tag().to_string())
    }
}

hcc_types::impl_to_json!(CausalEdge {
    from,
    to,
    kind,
    wait
});

impl ToJson for CausalGraph {
    fn to_json(&self) -> Json {
        Json::Arr(self.edges.iter().map(ToJson::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_graph_drops_edges() {
        let mut g = CausalGraph::new(false);
        g.push(CausalEdge::new(
            EventId(0),
            EventId(1),
            EdgeKind::StreamOrder,
        ));
        g.extend([CausalEdge::new(
            EventId(1),
            EventId(2),
            EdgeKind::LaunchToExec,
        )]);
        assert!(g.is_empty());
        assert!(!g.is_enabled());
    }

    #[test]
    fn enabled_graph_collects_and_indexes() {
        let mut g = CausalGraph::new(true);
        g.push(
            CausalEdge::new(EventId(0), EventId(2), EdgeKind::LaunchToExec)
                .with_wait(SimDuration::micros(3)),
        );
        g.push(CausalEdge::new(
            EventId(1),
            EventId(2),
            EdgeKind::CopyToKernel,
        ));
        assert_eq!(g.len(), 2);
        let preds: Vec<_> = g.predecessors(EventId(2)).map(|e| e.from).collect();
        assert_eq!(preds, vec![EventId(0), EventId(1)]);
        assert_eq!(g.edges()[0].wait, SimDuration::micros(3));
        assert!(g.is_acyclic());
    }

    #[test]
    fn backward_edge_breaks_acyclicity() {
        let mut g = CausalGraph::new(true);
        g.push(CausalEdge::new(
            EventId(5),
            EventId(1),
            EdgeKind::StreamOrder,
        ));
        assert!(!g.is_acyclic());
    }

    #[test]
    fn json_shape_is_stable() {
        let mut g = CausalGraph::new(true);
        g.push(
            CausalEdge::new(EventId(0), EventId(1), EdgeKind::CryptoToStaging)
                .with_wait(SimDuration::from_nanos(42)),
        );
        let s = g.to_json_string();
        assert!(s.contains("\"kind\":\"crypto_to_staging\""), "{s}");
        assert!(s.contains("\"from\":0"), "{s}");
        let parsed = hcc_types::json::Json::parse(&s).unwrap();
        assert_eq!(parsed.as_array().map(<[Json]>::len), Some(1));
    }
}
