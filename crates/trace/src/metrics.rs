//! Virtual-time metrics plane: counters, gauges, and histograms sampled on
//! the *simulation* clock.
//!
//! The span events in [`crate::Timeline`] say what happened; this module
//! says how deep the queues were while it happened. Components own their
//! instruments ([`Counter`], [`Gauge`], [`Hist`]) and record change-points
//! as they schedule work; a run-level [`MetricsSet`] snapshot is assembled
//! at the end and exported as Perfetto counter tracks
//! ([`crate::export::ChromeExport::with_metrics`]), a Prometheus-style
//! text page ([`to_prometheus`]), or an [`hcc_types::json`] tree.
//!
//! Determinism contract:
//!
//! - **Virtual-time sampling rule.** A gauge sample is a change-point
//!   `(SimTime, delta)` recorded at a scheduling event. There is no
//!   periodic poller and no wall-clock read anywhere on the simulation
//!   path, so an obs-enabled run replays bit-for-bit for a given seed at
//!   any `HCC_ENGINE_THREADS`.
//! - **Zero-cost when disabled.** Every instrument is a no-op unless
//!   explicitly enabled; disabled runs take no samples, draw no RNG, and
//!   produce byte-identical figure output.
//! - **Order-independence.** Change-points may be recorded out of time
//!   order (engine completions interleave); [`Gauge::series`] sorts and
//!   merges them, so the snapshot depends only on the *set* of samples.
//!
//! ```
//! use hcc_trace::metrics::Gauge;
//! use hcc_types::{SimDuration, SimTime};
//!
//! let mut g = Gauge::enabled();
//! let t = |us| SimTime::ZERO + SimDuration::micros(us);
//! g.occupy(t(0), t(10)); // one item queued for 10us
//! g.occupy(t(5), t(10)); // a second overlaps for 5us
//! let s = g.series("demo");
//! assert_eq!(s.peak(), 2);
//! assert_eq!(s.final_value(), 0);
//! assert_eq!(s.integral(), SimDuration::micros(15));
//! ```

use std::fmt::Write as _;

use hcc_types::json::{Json, ToJson};
use hcc_types::{SimDuration, SimTime};

use crate::histogram::Histogram;

/// A monotone event counter. Disabled by default; [`Counter::add`] is a
/// single branch when disabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    enabled: bool,
    total: u64,
}

impl Counter {
    /// A disabled (no-op) counter — the default state.
    pub fn new() -> Self {
        Counter::default()
    }

    /// An enabled counter starting at zero.
    pub fn enabled() -> Self {
        Counter {
            enabled: true,
            total: 0,
        }
    }

    /// Turns recording on (used when a config enables the metrics plane).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether this counter records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `n` events. Counters only ever move up.
    pub fn add(&mut self, n: u64) {
        if self.enabled {
            self.total += n;
        }
    }

    /// Adds one event.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Current total.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// An up/down instrument sampled in virtual time as change-points.
///
/// Recording is append-only (`(SimTime, delta)` pairs); the sorted,
/// merged step series is materialized by [`Gauge::series`]. This keeps
/// the hot path branch-plus-push and makes the snapshot independent of
/// recording order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Gauge {
    enabled: bool,
    deltas: Vec<(SimTime, i64)>,
}

impl Gauge {
    /// A disabled (no-op) gauge — the default state.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// An enabled gauge with no samples.
    pub fn enabled() -> Self {
        Gauge {
            enabled: true,
            deltas: Vec::new(),
        }
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether this gauge records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a signed step at `at`.
    pub fn add(&mut self, at: SimTime, delta: i64) {
        if self.enabled && delta != 0 {
            self.deltas.push((at, delta));
        }
    }

    /// Records one unit occupying `[from, to)` — the common
    /// "item enters queue / item leaves queue" pair.
    pub fn occupy(&mut self, from: SimTime, to: SimTime) {
        self.occupy_n(from, to, 1);
    }

    /// Records `amount` units occupying `[from, to)`. Zero-length
    /// intervals cancel and leave no sample.
    pub fn occupy_n(&mut self, from: SimTime, to: SimTime, amount: i64) {
        if from < to {
            self.add(from, amount);
            self.add(to, -amount);
        }
    }

    /// Number of raw change-points recorded.
    pub fn raw_len(&self) -> usize {
        self.deltas.len()
    }

    /// Materializes the sorted, merged step series under `name`.
    pub fn series(&self, name: &str) -> Series {
        let mut deltas = self.deltas.clone();
        deltas.sort_by_key(|(t, _)| *t);
        let mut samples: Vec<(SimTime, i64)> = Vec::with_capacity(deltas.len());
        let mut value = 0i64;
        for (t, d) in deltas {
            value += d;
            match samples.last_mut() {
                Some((last_t, last_v)) if *last_t == t => *last_v = value,
                _ => samples.push((t, value)),
            }
        }
        // Coalesced no-ops (e.g. +1/-1 at the same instant) leave samples
        // equal to their predecessor; drop them so the series is minimal.
        let mut prev = 0i64;
        samples.retain(|&(_, v)| {
            let keep = v != prev;
            if keep {
                prev = v;
            }
            keep
        });
        Series {
            name: name.to_string(),
            samples,
        }
    }
}

/// A materialized gauge series: strictly-increasing change-points of a
/// step function starting at 0 before the first sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Series {
    /// Metric name (dotted path, e.g. `gpu.ring.occupancy`).
    pub name: String,
    /// `(time, value-after-time)` change-points.
    pub samples: Vec<(SimTime, i64)>,
}

impl Series {
    /// Highest value ever held (0 for an empty series).
    pub fn peak(&self) -> i64 {
        self.samples.iter().map(|&(_, v)| v).max().unwrap_or(0)
    }

    /// Value after the last change-point (0 when balanced).
    pub fn final_value(&self) -> i64 {
        self.samples.last().map(|&(_, v)| v).unwrap_or(0)
    }

    /// Number of change-points.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series has no change-points.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Time-weighted integral `Σ value·dt` between change-points, i.e.
    /// total unit-seconds of occupancy. For a queue-depth gauge built
    /// from per-item `occupy` intervals this equals the summed per-item
    /// waiting time exactly. Negative excursions (which a well-formed
    /// gauge never has) contribute zero.
    pub fn integral(&self) -> SimDuration {
        let mut total: u64 = 0;
        for w in self.samples.windows(2) {
            let (t0, v) = w[0];
            let (t1, _) = w[1];
            if v > 0 {
                total += (v as u64).saturating_mul((t1 - t0).as_nanos());
            }
        }
        SimDuration::from_nanos(total)
    }

    /// Time-weighted `p`-quantile of the values the step function held
    /// over its observed span (`p` clamped to `[0, 1]`): the smallest
    /// value `v` such that the series spent at least a `p` fraction of the
    /// time between its first and last change-point at values `≤ v`.
    ///
    /// Total on every input — the degenerate cases the serving CDFs hit:
    /// an empty series yields 0, and a single-sample series (whose final
    /// change-point has no dwell time at all) yields that sample's value
    /// rather than panicking or dividing by zero.
    pub fn quantile(&self, p: f64) -> i64 {
        if self.samples.is_empty() {
            return 0;
        }
        // Dwell time per held value: each change-point's value persists
        // until the next one. The last value has zero dwell by definition.
        let mut dwells: Vec<(i64, u64)> = self
            .samples
            .windows(2)
            .map(|w| (w[0].1, (w[1].0 - w[0].0).as_nanos()))
            .collect();
        let total: u64 = dwells.iter().map(|&(_, d)| d).sum();
        if total == 0 {
            // Single change-point (or all at one instant): the only
            // defensible answer is the value the series ended on.
            return self.final_value();
        }
        dwells.sort_unstable();
        let p = p.clamp(0.0, 1.0);
        let target = (p * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (value, dwell) in dwells {
            seen += dwell;
            if seen >= target {
                return value;
            }
        }
        self.final_value()
    }

    /// Mean value over `[ZERO, span]` (0 for an empty span).
    pub fn mean_over(&self, span: SimDuration) -> f64 {
        if span.is_zero() {
            0.0
        } else {
            self.integral().as_nanos() as f64 / span.as_nanos() as f64
        }
    }

    /// Value the step function holds at instant `t`: 0 before the first
    /// change-point, and the final value for any `t` at or past the last
    /// one (a step function persists).
    pub fn value_at(&self, t: SimTime) -> i64 {
        let idx = self.samples.partition_point(|&(st, _)| st <= t);
        if idx == 0 {
            0
        } else {
            self.samples[idx - 1].1
        }
    }

    /// Time-weighted integral of the step function over `[from, to)`.
    /// Total on every input: inverted or empty windows yield zero,
    /// windows starting before the first change-point integrate the
    /// implicit leading 0, and windows ending past the last change-point
    /// extend its value (negative excursions contribute zero, matching
    /// [`Series::integral`]).
    pub fn integral_between(&self, from: SimTime, to: SimTime) -> SimDuration {
        if to <= from {
            return SimDuration::ZERO;
        }
        let mut total = 0u64;
        let mut cursor = from;
        let mut value = self.value_at(from);
        let idx = self.samples.partition_point(|&(st, _)| st <= from);
        for &(st, v) in &self.samples[idx..] {
            if st >= to {
                break;
            }
            if value > 0 {
                total += (value as u64).saturating_mul((st - cursor).as_nanos());
            }
            cursor = st;
            value = v;
        }
        if value > 0 {
            total += (value as u64).saturating_mul((to - cursor).as_nanos());
        }
        SimDuration::from_nanos(total)
    }

    /// Mean held value over `[from, to)` (0 for inverted/empty windows).
    pub fn mean_between(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            0.0
        } else {
            self.integral_between(from, to).as_nanos() as f64 / (to - from).as_nanos() as f64
        }
    }

    /// Highest value the step function holds anywhere in `[from, to)`
    /// (0 for inverted/empty windows).
    pub fn peak_between(&self, from: SimTime, to: SimTime) -> i64 {
        if to <= from {
            return 0;
        }
        let mut peak = self.value_at(from);
        let idx = self.samples.partition_point(|&(st, _)| st <= from);
        for &(st, v) in &self.samples[idx..] {
            if st >= to {
                break;
            }
            peak = peak.max(v);
        }
        peak
    }
}

/// Virtual time during which both step series are simultaneously positive
/// — the measured overlap between e.g. copy-engine activity and kernel
/// execution (the α/β accounting of the Fig. 3 model).
pub fn overlap_time(a: &Series, b: &Series) -> SimDuration {
    let mut total = SimDuration::ZERO;
    let (mut ia, mut ib) = (0usize, 0usize);
    let (mut va, mut vb) = (0i64, 0i64);
    let mut cursor: Option<SimTime> = None;
    while ia < a.samples.len() || ib < b.samples.len() {
        let ta = a.samples.get(ia).map(|&(t, _)| t);
        let tb = b.samples.get(ib).map(|&(t, _)| t);
        let t = match (ta, tb) {
            (Some(x), Some(y)) => x.min(y),
            (Some(x), None) => x,
            (None, Some(y)) => y,
            (None, None) => break,
        };
        if let Some(prev) = cursor {
            if va > 0 && vb > 0 {
                total += t - prev;
            }
        }
        if ta == Some(t) {
            va = a.samples[ia].1;
            ia += 1;
        }
        if tb == Some(t) {
            vb = b.samples[ib].1;
            ib += 1;
        }
        cursor = Some(t);
    }
    total
}

/// A run-level snapshot of every instrument: the registry the exporters
/// consume. Entirely `Vec`-backed so iteration order — and therefore
/// every export — is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSet {
    /// `(name, total)` monotone counters.
    pub counters: Vec<(String, u64)>,
    /// Materialized gauge series.
    pub gauges: Vec<Series>,
    /// `(name, histogram)` distributions.
    pub hists: Vec<(String, Histogram)>,
}

impl MetricsSet {
    /// An empty snapshot.
    pub fn new() -> Self {
        MetricsSet::default()
    }

    /// Records a counter total under `name`.
    pub fn push_counter(&mut self, name: &str, total: u64) {
        self.counters.push((name.to_string(), total));
    }

    /// Snapshots a live [`Counter`] (skipped while disabled).
    pub fn counter(&mut self, name: &str, c: &Counter) {
        if c.is_enabled() {
            self.push_counter(name, c.total());
        }
    }

    /// Snapshots a live [`Gauge`] (skipped while disabled).
    pub fn gauge(&mut self, name: &str, g: &Gauge) {
        if g.is_enabled() {
            self.gauges.push(g.series(name));
        }
    }

    /// Records an already-materialized series.
    pub fn push_series(&mut self, s: Series) {
        self.gauges.push(s);
    }

    /// Records a histogram under `name`.
    pub fn push_hist(&mut self, name: &str, h: Histogram) {
        self.hists.push((name.to_string(), h));
    }

    /// Looks up a counter total by name.
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge series by name.
    pub fn gauge_series(&self, name: &str) -> Option<&Series> {
        self.gauges.iter().find(|s| s.name == name)
    }

    /// Shorthand: the time-weighted integral of a named gauge.
    pub fn gauge_integral(&self, name: &str) -> Option<SimDuration> {
        self.gauge_series(name).map(Series::integral)
    }

    /// Total change-points across all gauges — the "did we actually
    /// sample anything" check the CI smoke asserts on.
    pub fn total_samples(&self) -> usize {
        self.gauges.iter().map(Series::len).sum()
    }

    /// Appends every entry of `other`, prefixing names with `prefix.`.
    pub fn absorb(&mut self, prefix: &str, other: MetricsSet) {
        for (n, v) in other.counters {
            self.counters.push((format!("{prefix}.{n}"), v));
        }
        for mut s in other.gauges {
            s.name = format!("{prefix}.{}", s.name);
            self.gauges.push(s);
        }
        for (n, h) in other.hists {
            self.hists.push((format!("{prefix}.{n}"), h));
        }
    }
}

impl ToJson for Series {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("peak".to_string(), Json::I64(self.peak())),
            ("final".to_string(), Json::I64(self.final_value())),
            (
                "integral_ns".to_string(),
                Json::U64(self.integral().as_nanos()),
            ),
            (
                "samples".to_string(),
                Json::Arr(
                    self.samples
                        .iter()
                        .map(|&(t, v)| Json::Arr(vec![Json::U64(t.as_nanos()), Json::I64(v)]))
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for MetricsSet {
    fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| {
                Json::Obj(vec![
                    ("name".to_string(), Json::Str(n.clone())),
                    ("total".to_string(), Json::U64(*v)),
                ])
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|(n, h)| {
                Json::Obj(vec![
                    ("name".to_string(), Json::Str(n.clone())),
                    ("count".to_string(), Json::U64(h.count())),
                    ("mean_ns".to_string(), Json::U64(h.mean().as_nanos())),
                    (
                        "buckets".to_string(),
                        Json::Arr(
                            h.buckets()
                                .iter()
                                .map(|&(lo, c)| {
                                    Json::Arr(vec![Json::U64(lo.as_nanos()), Json::U64(c)])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("counters".to_string(), Json::Arr(counters)),
            ("gauges".to_string(), self.gauges.to_json()),
            ("hists".to_string(), Json::Arr(hists)),
        ])
    }
}

fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// One histogram exemplar sourced from the flight recorder:
/// `(request id, observed latency, settle time)`.
pub type FlightExemplar = (u32, SimDuration, SimTime);

/// Renders the snapshot as a Prometheus-style text exposition page.
/// Gauges are summarized (peak / final / integral / sample count) rather
/// than dumped as raw series; use the JSON export for the full samples.
pub fn to_prometheus(set: &MetricsSet) -> String {
    prometheus_page(set, &[])
}

/// [`to_prometheus`] with OpenMetrics-style exemplars: each histogram
/// `_bucket` line whose latency range contains at least one flight
/// exemplar gets a ` # {request_id="…"} <latency_ns> <settle_s>` suffix
/// pointing at the worst request that landed in that bucket, so a scrape
/// of aggregate latency links straight to a `why --request` forensics
/// target. Lines without a matching exemplar are byte-identical to the
/// plain export.
pub fn to_prometheus_with_exemplars(set: &MetricsSet, exemplars: &[FlightExemplar]) -> String {
    prometheus_page(set, exemplars)
}

/// The worst exemplar whose latency falls in `(lo, hi]` nanoseconds
/// (`lo = None` means from zero inclusive, `hi = None` means unbounded —
/// the `+Inf` bucket). Ties break toward the smaller request id.
fn pick_exemplar(
    exemplars: &[FlightExemplar],
    lo: Option<u64>,
    hi: Option<u64>,
) -> Option<&FlightExemplar> {
    exemplars
        .iter()
        .filter(|(_, lat, _)| {
            let ns = lat.as_nanos();
            lo.map_or(true, |l| ns > l) && hi.map_or(true, |h| ns <= h)
        })
        .max_by_key(|(req, lat, _)| (lat.as_nanos(), std::cmp::Reverse(*req)))
}

fn exemplar_suffix(e: Option<&FlightExemplar>) -> String {
    match e {
        Some(&(req, lat, at)) => {
            let ns = at.as_nanos();
            format!(
                " # {{request_id=\"{req}\"}} {} {}.{:09}",
                lat.as_nanos(),
                ns / 1_000_000_000,
                ns % 1_000_000_000
            )
        }
        None => String::new(),
    }
}

fn prometheus_page(set: &MetricsSet, exemplars: &[FlightExemplar]) -> String {
    let mut out = String::new();
    for (name, total) in &set.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE hcc_{n}_total counter");
        let _ = writeln!(out, "hcc_{n}_total {total}");
    }
    for s in &set.gauges {
        let n = prom_name(&s.name);
        let _ = writeln!(out, "# TYPE hcc_{n} gauge");
        let _ = writeln!(out, "hcc_{n}_peak {}", s.peak());
        let _ = writeln!(out, "hcc_{n}_final {}", s.final_value());
        let _ = writeln!(out, "hcc_{n}_integral_ns {}", s.integral().as_nanos());
        let _ = writeln!(out, "hcc_{n}_samples {}", s.len());
    }
    for (name, h) in &set.hists {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE hcc_{n} histogram");
        let mut cumulative = 0u64;
        let mut prev: Option<u64> = None;
        for (lo, c) in h.buckets() {
            cumulative += c;
            let le = lo.as_nanos() * 2;
            let _ = writeln!(
                out,
                "hcc_{n}_bucket{{le=\"{le}\"}} {cumulative}{}",
                exemplar_suffix(pick_exemplar(exemplars, prev, Some(le)))
            );
            prev = Some(le);
        }
        let _ = writeln!(
            out,
            "hcc_{n}_bucket{{le=\"+Inf\"}} {}{}",
            h.count(),
            exemplar_suffix(pick_exemplar(exemplars, prev, None))
        );
        let _ = writeln!(out, "hcc_{n}_sum {}", h.total().as_nanos());
        let _ = writeln!(out, "hcc_{n}_count {}", h.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::micros(us)
    }

    #[test]
    fn disabled_instruments_record_nothing() {
        let mut c = Counter::new();
        c.inc();
        c.add(10);
        assert_eq!(c.total(), 0);
        let mut g = Gauge::new();
        g.occupy(t(0), t(10));
        g.add(t(3), 5);
        assert_eq!(g.raw_len(), 0);
        assert!(g.series("x").is_empty());
    }

    #[test]
    fn counter_counts() {
        let mut c = Counter::enabled();
        c.inc();
        c.add(4);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn gauge_series_sorts_and_merges() {
        let mut g = Gauge::enabled();
        // Recorded out of order, with two deltas at the same instant.
        g.occupy(t(10), t(20));
        g.occupy(t(0), t(10));
        let s = g.series("q");
        // +1@0, (-1,+1)@10 merge to no change and are dropped, -1@20.
        assert_eq!(s.samples, vec![(t(0), 1), (t(20), 0)]);
        assert_eq!(s.peak(), 1);
        assert_eq!(s.final_value(), 0);
        assert_eq!(s.integral(), SimDuration::micros(20));
    }

    #[test]
    fn zero_length_occupy_leaves_no_sample() {
        let mut g = Gauge::enabled();
        g.occupy(t(5), t(5));
        assert_eq!(g.raw_len(), 0);
    }

    #[test]
    fn integral_is_per_item_wait_sum() {
        let mut g = Gauge::enabled();
        g.occupy(t(0), t(7));
        g.occupy(t(2), t(12));
        g.occupy_n(t(4), t(5), 3);
        let s = g.series("q");
        assert_eq!(s.integral(), SimDuration::micros(7 + 10 + 3));
        assert_eq!(s.peak(), 5);
    }

    #[test]
    fn series_quantile_is_time_weighted() {
        let mut g = Gauge::enabled();
        // Depth 1 for 90µs, depth 10 for 10µs: p50 = 1, p99/p999 = 10.
        g.occupy(t(0), t(100));
        g.occupy_n(t(90), t(100), 9);
        let s = g.series("q");
        assert_eq!(s.quantile(0.5), 1);
        assert_eq!(s.quantile(0.90), 1);
        assert_eq!(s.quantile(0.99), 10);
        assert_eq!(s.quantile(0.999), 10);
    }

    #[test]
    fn series_quantile_degenerate_inputs_are_defined() {
        // Empty: no samples at all.
        let empty = Gauge::enabled().series("e");
        for p in [0.0, 0.5, 0.99, 0.999] {
            assert_eq!(empty.quantile(p), 0);
        }
        // Single change-point: zero dwell time, still a defined answer.
        let mut g = Gauge::enabled();
        g.add(t(5), 3);
        let single = g.series("s");
        assert_eq!(single.len(), 1);
        for p in [0.0, 0.5, 0.99, 0.999] {
            assert_eq!(single.quantile(p), 3, "p={p}");
        }
        // Several deltas collapsed onto one instant behave like one.
        let mut h = Gauge::enabled();
        h.add(t(7), 2);
        h.add(t(7), 2);
        assert_eq!(h.series("i").quantile(0.999), 4);
    }

    #[test]
    fn overlap_time_intersects_positive_regions() {
        let mut a = Gauge::enabled();
        a.occupy(t(0), t(10));
        a.occupy(t(20), t(30));
        let mut b = Gauge::enabled();
        b.occupy(t(5), t(25));
        let o = overlap_time(&a.series("a"), &b.series("b"));
        assert_eq!(o, SimDuration::micros(5 + 5));
        assert_eq!(
            overlap_time(
                &a.series("a"),
                &Series {
                    name: "empty".into(),
                    samples: vec![],
                }
            ),
            SimDuration::ZERO
        );
    }

    #[test]
    fn set_lookup_and_absorb() {
        let mut inner = MetricsSet::new();
        inner.push_counter("ops", 3);
        let mut g = Gauge::enabled();
        g.occupy(t(0), t(4));
        inner.gauge("queue", &g);
        inner.push_hist("lat", Histogram::from_durations([SimDuration::micros(1)]));

        let mut set = MetricsSet::new();
        set.absorb("gpu", inner);
        assert_eq!(set.counter_total("gpu.ops"), Some(3));
        assert_eq!(
            set.gauge_integral("gpu.queue"),
            Some(SimDuration::micros(4))
        );
        assert_eq!(set.total_samples(), 2);
        assert_eq!(set.hists[0].0, "gpu.lat");
    }

    #[test]
    fn disabled_instruments_are_skipped_by_snapshot() {
        let mut set = MetricsSet::new();
        set.counter("off", &Counter::new());
        set.gauge("off", &Gauge::new());
        assert!(set.counters.is_empty());
        assert!(set.gauges.is_empty());
    }

    #[test]
    fn windowed_reads_match_whole_series_reads() {
        let mut g = Gauge::enabled();
        g.occupy(t(10), t(30));
        g.occupy(t(20), t(40));
        let s = g.series("q");
        // value_at walks the step function including the implicit edges.
        assert_eq!(s.value_at(t(0)), 0);
        assert_eq!(s.value_at(t(10)), 1);
        assert_eq!(s.value_at(t(25)), 2);
        assert_eq!(s.value_at(t(40)), 0);
        assert_eq!(s.value_at(t(999)), 0);
        // A window covering the whole series reproduces integral()/peak().
        assert_eq!(s.integral_between(t(0), t(100)), s.integral());
        assert_eq!(s.peak_between(t(0), t(100)), s.peak());
        // Interior window: [15, 35) holds 1 for 5µs, 2 for 10µs, 1 for 5µs.
        assert_eq!(s.integral_between(t(15), t(35)), SimDuration::micros(30));
        assert!((s.mean_between(t(15), t(35)) - 1.5).abs() < 1e-12);
        assert_eq!(s.peak_between(t(15), t(35)), 2);
        // Window entirely inside one step.
        assert_eq!(s.integral_between(t(22), t(24)), SimDuration::micros(4));
        assert_eq!(s.peak_between(t(22), t(24)), 2);
    }

    #[test]
    fn windowed_reads_degenerate_inputs_are_defined() {
        // Empty series: every read is zero.
        let empty = Gauge::enabled().series("e");
        assert_eq!(empty.value_at(t(5)), 0);
        assert_eq!(empty.integral_between(t(0), t(10)), SimDuration::ZERO);
        assert_eq!(empty.mean_between(t(0), t(10)), 0.0);
        assert_eq!(empty.peak_between(t(0), t(10)), 0);
        assert_eq!(empty.mean_over(SimDuration::ZERO), 0.0);
        assert_eq!(empty.mean_over(SimDuration::micros(10)), 0.0);

        // Single change-point: the value persists past the last sample.
        let mut g = Gauge::enabled();
        g.add(t(10), 3);
        let single = g.series("s");
        assert_eq!(single.len(), 1);
        assert_eq!(single.value_at(t(9)), 0);
        assert_eq!(single.value_at(t(10)), 3);
        // Window entirely before the first change-point.
        assert_eq!(single.integral_between(t(0), t(10)), SimDuration::ZERO);
        assert_eq!(single.peak_between(t(0), t(10)), 0);
        // Window extending past the last change-point integrates the
        // persisted value.
        assert_eq!(
            single.integral_between(t(5), t(20)),
            SimDuration::micros(30)
        );
        assert_eq!(single.peak_between(t(5), t(20)), 3);

        // Inverted and empty windows are zero, never a panic.
        assert_eq!(single.integral_between(t(20), t(5)), SimDuration::ZERO);
        assert_eq!(single.mean_between(t(20), t(5)), 0.0);
        assert_eq!(single.peak_between(t(12), t(12)), 0);

        // overlap_time with degenerate partners.
        let e = Series {
            name: "e".into(),
            samples: vec![],
        };
        assert_eq!(overlap_time(&e, &e), SimDuration::ZERO);
        assert_eq!(overlap_time(&single, &e), SimDuration::ZERO);
        // Two single-sample series that both persist positive values
        // never close their overlap window (no later change-point), so
        // the measured overlap is zero — the scan stops at the last edge.
        assert_eq!(overlap_time(&single, &single), SimDuration::ZERO);
    }

    #[test]
    fn prometheus_hist_export_is_ingestible() {
        let mut set = MetricsSet::new();
        set.push_hist(
            "stage.lat",
            Histogram::from_durations([
                SimDuration::from_nanos(1),
                SimDuration::from_nanos(3),
                SimDuration::from_nanos(3),
                SimDuration::micros(1),
            ]),
        );
        // Cumulative buckets, an explicit +Inf, and an exact _sum — the
        // shape real Prometheus tooling requires of a histogram family.
        let expected = "\
# TYPE hcc_stage_lat histogram
hcc_stage_lat_bucket{le=\"2\"} 1
hcc_stage_lat_bucket{le=\"4\"} 3
hcc_stage_lat_bucket{le=\"1024\"} 4
hcc_stage_lat_bucket{le=\"+Inf\"} 4
hcc_stage_lat_sum 1007
hcc_stage_lat_count 4
";
        assert_eq!(to_prometheus(&set), expected);
    }

    #[test]
    fn prometheus_exemplar_format_is_pinned() {
        let mut set = MetricsSet::new();
        set.push_hist(
            "req.latency",
            Histogram::from_durations([
                SimDuration::from_nanos(1),
                SimDuration::from_nanos(3),
                SimDuration::from_nanos(3),
                SimDuration::micros(1),
            ]),
        );
        // Flight exemplars: request 9 lands in the le="2" bucket, request
        // 7 in (2, 4], request 12 tops the le="1024" bucket, and nothing
        // overflows into +Inf (its line stays bare).
        let exemplars: Vec<FlightExemplar> = vec![
            (9, SimDuration::from_nanos(2), t(1)),
            (7, SimDuration::from_nanos(3), t(2)),
            (
                12,
                SimDuration::micros(1),
                SimTime::from_nanos(1_500_000_500),
            ),
        ];
        let expected = "\
# TYPE hcc_req_latency histogram
hcc_req_latency_bucket{le=\"2\"} 1 # {request_id=\"9\"} 2 0.000001000
hcc_req_latency_bucket{le=\"4\"} 3 # {request_id=\"7\"} 3 0.000002000
hcc_req_latency_bucket{le=\"1024\"} 4 # {request_id=\"12\"} 1000 1.500000500
hcc_req_latency_bucket{le=\"+Inf\"} 4
hcc_req_latency_sum 1007
hcc_req_latency_count 4
";
        assert_eq!(to_prometheus_with_exemplars(&set, &exemplars), expected);
        // The empty-exemplar page stays byte-identical to the plain export.
        assert_eq!(to_prometheus_with_exemplars(&set, &[]), to_prometheus(&set));
    }

    #[test]
    fn json_and_prometheus_exports_cover_all_entries() {
        let mut set = MetricsSet::new();
        set.push_counter("gpu.ring.submissions", 7);
        let mut g = Gauge::enabled();
        g.occupy(t(1), t(3));
        set.gauge("gpu.ring.occupancy", &g);
        set.push_hist(
            "engine.scenario_wall",
            Histogram::from_durations([SimDuration::micros(10)]),
        );

        let json = set.to_json();
        let parsed = Json::parse(&json.to_string()).unwrap();
        assert_eq!(
            parsed.get("counters").unwrap().at(0).unwrap().get("total"),
            Some(&Json::U64(7))
        );
        let gauge = parsed.get("gauges").unwrap().at(0).unwrap();
        assert_eq!(gauge.get("peak").unwrap().as_u64(), Some(1));
        assert_eq!(gauge.get("integral_ns").unwrap().as_u64(), Some(2_000));

        let prom = to_prometheus(&set);
        assert!(prom.contains("hcc_gpu_ring_submissions_total 7"));
        assert!(prom.contains("hcc_gpu_ring_occupancy_peak 1"));
        assert!(prom.contains("hcc_engine_scenario_wall_count 1"));
    }
}
