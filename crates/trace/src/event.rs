//! Trace events — the simulator's equivalent of an Nsight Systems export.

use hcc_types::json::{Json, ToJson};
use hcc_types::{ByteSize, CopyKind, FaultSite, HostMemKind, MemSpace, SimDuration, SimTime};

/// Identifies a kernel *function* (not an individual launch), so repeated
/// launches of the same kernel can be grouped (Fig. 10/12a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(pub u32);

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "K{}", self.0)
    }
}

/// Identifies a CUDA stream within a context. Stream 0 is the default
/// (synchronizing) stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamId(pub u32);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Why a `tdx_hypercall` transition was taken — the typed replacement for
/// the old free-form `&'static str` label, so hot-path grouping compiles
/// to a jump table instead of string compares.
///
/// `Display` renders the exact strings the free-form labels used, so
/// exports and summaries are byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum HypercallReason {
    /// Doorbell MMIO write trapping to the host (`#VE`).
    Doorbell,
    /// DMA mapping / unmapping of a host buffer.
    DmaMap,
    /// Launch-path submission transition.
    Launch,
    /// Lazy driver setup on a kernel's first launch.
    LaunchSetup,
    /// Private→shared page conversion (`set_memory_decrypted`).
    SetMemoryDecrypted,
    /// Informational marker for a CUDA-graph node boundary.
    GraphNode,
}

impl HypercallReason {
    /// The label the free-form payload used for this reason.
    pub const fn as_str(self) -> &'static str {
        match self {
            HypercallReason::Doorbell => "doorbell",
            HypercallReason::DmaMap => "dma_map",
            HypercallReason::Launch => "launch",
            HypercallReason::LaunchSetup => "launch_setup",
            HypercallReason::SetMemoryDecrypted => "set_memory_decrypted",
            HypercallReason::GraphNode => "graph_node",
        }
    }
}

impl std::fmt::Display for HypercallReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a trace span represents.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// A `cudaLaunchKernel` call on the host. The span is the KLO; the
    /// recorded `queue_wait` is the LQT the call spent blocked on a full
    /// command ring before the driver work began.
    Launch {
        /// Which kernel function was launched.
        kernel: KernelId,
        /// Launch queuing time (LQT) preceding this span.
        queue_wait: SimDuration,
        /// Whether this was the first launch of `kernel` in the context.
        first: bool,
    },
    /// Kernel execution on the compute engine. The span is the KET.
    Kernel {
        /// Which kernel function executed.
        kernel: KernelId,
        /// Whether the kernel touched managed (UVM) memory.
        uvm: bool,
    },
    /// An explicit memory copy (the span covers the full blocking call or
    /// the device-side transfer for async copies).
    Memcpy {
        /// Transfer direction as Nsight would label it.
        kind: CopyKind,
        /// Bytes moved.
        bytes: ByteSize,
        /// Host memory kind of the host endpoint (if any).
        mem: HostMemKind,
        /// `true` when Nsight would label the transfer "Managed" — the CC
        /// pinned-demotion path (Observation 1/3).
        managed: bool,
    },
    /// A memory allocation call (`cudaMalloc*`).
    Alloc {
        /// Which space was allocated.
        space: MemSpace,
        /// Requested size.
        bytes: ByteSize,
    },
    /// A `cudaFree`-family call.
    Free {
        /// Which space was freed.
        space: MemSpace,
        /// Size released.
        bytes: ByteSize,
    },
    /// Host-side synchronization (`cudaDeviceSynchronize`, stream sync).
    Sync,
    /// Software encryption/decryption on the CPU (CC transfers only).
    Crypto {
        /// Bytes processed.
        bytes: ByteSize,
        /// `true` for encryption, `false` for decryption.
        encrypt: bool,
    },
    /// A `tdx_hypercall` transition (CC only), for Fig. 8-style accounting.
    Hypercall {
        /// Why the transition was taken.
        reason: HypercallReason,
    },
    /// A bounce-pool (swiotlb) staging reservation (CC only). The span is
    /// the pool bookkeeping plus any first-touch page conversion, nested
    /// inside the copy it stages for.
    BounceReserve {
        /// Bytes reserved.
        bytes: ByteSize,
        /// Whether fresh pages had to be converted private→shared.
        converted: bool,
    },
    /// UVM far-fault servicing attributable to one kernel.
    UvmFault {
        /// Kernel whose access triggered the fault batch.
        kernel: KernelId,
        /// Pages migrated.
        pages: u64,
        /// Bytes migrated.
        bytes: ByteSize,
    },
    /// An injected fault struck a guarded operation. The span covers the
    /// detection instant (often zero-width); `attempts` counts the failed
    /// attempts the recovery absorbed for this operation.
    FaultInjected {
        /// Where the fault struck.
        site: FaultSite,
        /// Failed attempts, counting the initial one.
        attempts: u32,
    },
    /// One recovery retry: the span covers the backoff wait plus the
    /// re-done work, and sums into `T_fault`.
    Retry {
        /// Site being recovered.
        site: FaultSite,
        /// 1-based retry number.
        attempt: u32,
    },
    /// Recovery degraded staging to smaller chunks; the span is the extra
    /// per-chunk setup charged, and sums into `T_fault`.
    Degraded {
        /// Site that degraded.
        site: FaultSite,
    },
}

impl EventKind {
    /// Short tag used in summaries.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::Launch { .. } => "launch",
            EventKind::Kernel { .. } => "kernel",
            EventKind::Memcpy { .. } => "memcpy",
            EventKind::Alloc { .. } => "alloc",
            EventKind::Free { .. } => "free",
            EventKind::Sync => "sync",
            EventKind::Crypto { .. } => "crypto",
            EventKind::Hypercall { .. } => "hypercall",
            EventKind::BounceReserve { .. } => "bounce_reserve",
            EventKind::UvmFault { .. } => "uvm_fault",
            EventKind::FaultInjected { .. } => "fault",
            EventKind::Retry { .. } => "retry",
            EventKind::Degraded { .. } => "degraded",
        }
    }
}

/// One timed span in the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// Span start on the virtual clock.
    pub start: SimTime,
    /// Span end on the virtual clock.
    pub end: SimTime,
    /// Stream the operation was issued on, when applicable.
    pub stream: Option<StreamId>,
    /// Correlation id linking a `Launch` to the `Kernel` it produced
    /// (Nsight's correlation column). Zero when not applicable.
    pub correlation: u64,
}

impl TraceEvent {
    /// Creates an event spanning `start..end`.
    ///
    /// # Panics
    /// Panics if `end < start`.
    pub fn new(kind: EventKind, start: SimTime, end: SimTime) -> Self {
        assert!(end >= start, "event ends before it starts");
        TraceEvent {
            kind,
            start,
            end,
            stream: None,
            correlation: 0,
        }
    }

    /// Builder-style stream annotation.
    pub fn on_stream(mut self, stream: StreamId) -> Self {
        self.stream = Some(stream);
        self
    }

    /// Builder-style correlation annotation.
    pub fn with_correlation(mut self, id: u64) -> Self {
        self.correlation = id;
        self
    }

    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

impl ToJson for KernelId {
    fn to_json(&self) -> Json {
        Json::U64(u64::from(self.0))
    }
}

impl ToJson for StreamId {
    fn to_json(&self) -> Json {
        Json::U64(u64::from(self.0))
    }
}

impl ToJson for EventKind {
    /// Serializes as a flat tagged object: `{"type": <tag>, ...fields}`.
    fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> =
            vec![("type".to_string(), Json::Str(self.tag().to_string()))];
        let mut put = |key: &str, value: Json| fields.push((key.to_string(), value));
        match self {
            EventKind::Launch {
                kernel,
                queue_wait,
                first,
            } => {
                put("kernel", kernel.to_json());
                put("queue_wait", queue_wait.to_json());
                put("first", Json::Bool(*first));
            }
            EventKind::Kernel { kernel, uvm } => {
                put("kernel", kernel.to_json());
                put("uvm", Json::Bool(*uvm));
            }
            EventKind::Memcpy {
                kind,
                bytes,
                mem,
                managed,
            } => {
                put("kind", kind.to_json());
                put("bytes", bytes.to_json());
                put("mem", mem.to_json());
                put("managed", Json::Bool(*managed));
            }
            EventKind::Alloc { space, bytes } | EventKind::Free { space, bytes } => {
                put("space", space.to_json());
                put("bytes", bytes.to_json());
            }
            EventKind::Sync => {}
            EventKind::Crypto { bytes, encrypt } => {
                put("bytes", bytes.to_json());
                put("encrypt", Json::Bool(*encrypt));
            }
            EventKind::Hypercall { reason } => {
                put("reason", Json::Str(reason.as_str().to_string()));
            }
            EventKind::BounceReserve { bytes, converted } => {
                put("bytes", bytes.to_json());
                put("converted", Json::Bool(*converted));
            }
            EventKind::UvmFault {
                kernel,
                pages,
                bytes,
            } => {
                put("kernel", kernel.to_json());
                put("pages", Json::U64(*pages));
                put("bytes", bytes.to_json());
            }
            EventKind::FaultInjected { site, attempts } => {
                put("site", Json::Str(site.name().to_string()));
                put("attempts", Json::U64(u64::from(*attempts)));
            }
            EventKind::Retry { site, attempt } => {
                put("site", Json::Str(site.name().to_string()));
                put("attempt", Json::U64(u64::from(*attempt)));
            }
            EventKind::Degraded { site } => {
                put("site", Json::Str(site.name().to_string()));
            }
        }
        Json::Obj(fields)
    }
}

hcc_types::impl_to_json!(TraceEvent {
    kind,
    start,
    end,
    stream,
    correlation
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_is_span_length() {
        let e = TraceEvent::new(
            EventKind::Sync,
            SimTime::from_nanos(100),
            SimTime::from_nanos(350),
        );
        assert_eq!(e.duration(), SimDuration::from_nanos(250));
        assert_eq!(e.kind.tag(), "sync");
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn inverted_span_rejected() {
        let _ = TraceEvent::new(
            EventKind::Sync,
            SimTime::from_nanos(2),
            SimTime::from_nanos(1),
        );
    }

    #[test]
    fn builders_attach_metadata() {
        let e = TraceEvent::new(EventKind::Sync, SimTime::ZERO, SimTime::ZERO)
            .on_stream(StreamId(3))
            .with_correlation(99);
        assert_eq!(e.stream, Some(StreamId(3)));
        assert_eq!(e.correlation, 99);
    }

    #[test]
    fn tags_cover_all_kinds() {
        use hcc_types::{ByteSize, CopyKind, HostMemKind, MemSpace};
        let kinds = [
            EventKind::Launch {
                kernel: KernelId(0),
                queue_wait: SimDuration::ZERO,
                first: true,
            },
            EventKind::Kernel {
                kernel: KernelId(0),
                uvm: false,
            },
            EventKind::Memcpy {
                kind: CopyKind::H2D,
                bytes: ByteSize::kib(1),
                mem: HostMemKind::Pageable,
                managed: false,
            },
            EventKind::Alloc {
                space: MemSpace::Device,
                bytes: ByteSize::kib(1),
            },
            EventKind::Free {
                space: MemSpace::Device,
                bytes: ByteSize::kib(1),
            },
            EventKind::Sync,
            EventKind::Crypto {
                bytes: ByteSize::kib(1),
                encrypt: true,
            },
            EventKind::Hypercall {
                reason: HypercallReason::Doorbell,
            },
            EventKind::BounceReserve {
                bytes: ByteSize::mib(2),
                converted: true,
            },
            EventKind::UvmFault {
                kernel: KernelId(0),
                pages: 1,
                bytes: ByteSize::kib(64),
            },
            EventKind::FaultInjected {
                site: FaultSite::GcmTagH2D,
                attempts: 1,
            },
            EventKind::Retry {
                site: FaultSite::BounceExhausted,
                attempt: 1,
            },
            EventKind::Degraded {
                site: FaultSite::GcmTagD2H,
            },
        ];
        let tags: Vec<_> = kinds.iter().map(|k| k.tag()).collect();
        assert_eq!(tags.len(), 13);
        assert!(tags.contains(&"bounce_reserve"));
        assert!(tags.contains(&"uvm_fault"));
        assert!(tags.contains(&"fault"));
        assert!(tags.contains(&"retry"));
        assert!(tags.contains(&"degraded"));
    }
}
