//! # hcc-trace
//!
//! Nsight-Systems-style tracing for the `hcc` simulators: typed spans
//! ([`TraceEvent`]), a per-run container ([`Timeline`]), extraction of the
//! paper's launch/kernel/memory metrics (KLO, LQT, KQT, KET, `T_mem`,
//! `T_other`), distribution statistics ([`Cdf`], [`Summary`]), and the
//! call-stack cost trees behind Fig. 8 ([`CallFrame`]).
//!
//! Every figure in the paper's evaluation is a function of this event
//! stream; the bench harnesses consume these types directly.
//!
//! ```
//! use hcc_trace::{EventKind, KernelId, Timeline, TraceEvent};
//! use hcc_types::{SimDuration, SimTime};
//!
//! let mut tl = Timeline::new();
//! tl.push(
//!     TraceEvent::new(
//!         EventKind::Launch {
//!             kernel: KernelId(0),
//!             queue_wait: SimDuration::micros(1),
//!             first: true,
//!         },
//!         SimTime::ZERO,
//!         SimTime::ZERO + SimDuration::micros(6),
//!     )
//!     .with_correlation(1),
//! );
//! let lm = tl.launch_metrics();
//! assert_eq!(lm.total_klo(), SimDuration::micros(6));
//! assert_eq!(lm.total_lqt(), SimDuration::micros(1));
//! ```

mod callstack;
pub mod causal;
pub mod critpath;
mod event;
pub mod export;
pub mod flight;
mod histogram;
pub mod metrics;
pub mod quantile;
pub mod rollup;
mod stats;
mod timeline;

pub use callstack::CallFrame;
pub use causal::{CausalEdge, CausalGraph, EdgeKind, EventId};
pub use critpath::{Attribution, CritPath, ResourceClass, Segment};
pub use event::{EventKind, HypercallReason, KernelId, StreamId, TraceEvent};
pub use export::ChromeExport;
pub use flight::{FlightConfig, FlightLog, FlightRecorder, FlightSample, FlightSkeleton, SpanKind};
pub use histogram::Histogram;
pub use metrics::{Counter, Gauge, MetricsSet, Series};
pub use rollup::{CompletionSample, RollupCollector, Window, WindowStats};
pub use stats::{geomean, mean_ratio, Cdf, Summary};
pub use timeline::{KernelRecord, LaunchMetrics, LaunchRecord, MemMetrics, PhaseTotals, Timeline};

#[cfg(test)]
mod proptests {
    use super::*;
    use hcc_check::strategy::{u16s, u64s, vecs};
    use hcc_check::{ensure, ensure_eq, forall, Config};
    use hcc_types::{SimDuration, SimTime};

    /// Builds alternating launch/kernel events from raw (start, len, kernel)
    /// triples — the shrinkable representation the strategies generate.
    fn events_from(raw: &[(u64, u64, u16)]) -> Vec<TraceEvent> {
        raw.iter()
            .enumerate()
            .map(|(i, &(start, len, kernel))| {
                let s = SimTime::from_nanos(start);
                let e = s + SimDuration::from_nanos(len);
                if i % 2 == 0 {
                    TraceEvent::new(
                        EventKind::Launch {
                            kernel: KernelId(u32::from(kernel)),
                            queue_wait: SimDuration::from_nanos(len / 2),
                            first: false,
                        },
                        s,
                        e,
                    )
                    .with_correlation(i as u64)
                } else {
                    TraceEvent::new(
                        EventKind::Kernel {
                            kernel: KernelId(u32::from(kernel)),
                            uvm: false,
                        },
                        s,
                        e,
                    )
                    .with_correlation(i as u64 - 1)
                }
            })
            .collect()
    }

    fn raw_events() -> impl hcc_check::Strategy<Value = Vec<(u64, u64, u16)>> {
        vecs(
            (u64s(0..1_000_000), u64s(0..100_000), u16s(0..u16::MAX)),
            1..100,
        )
    }

    /// The end-to-end span can never be shorter than any phase total
    /// component derived from non-overlapping host work... but phases
    /// *can* exceed the span when events overlap. What must always hold:
    /// span >= longest single event.
    #[test]
    fn span_bounds_longest_event() {
        forall!(Config::new(0x7ACE_0001), raw in raw_events() => {
            let events = events_from(&raw);
            let tl: Timeline = events.iter().cloned().collect();
            let longest = events.iter().map(TraceEvent::duration).max().unwrap();
            ensure!(tl.span() >= longest, "span {} < longest {}", tl.span(), longest);
        });
    }

    /// CDF points are monotone and end at probability 1.
    #[test]
    fn cdf_points_monotone() {
        forall!(Config::new(0x7ACE_0002), samples in vecs(u64s(0..10_000_000), 1..200) => {
            let cdf = Cdf::from_durations(
                samples.into_iter().map(SimDuration::from_nanos).collect(),
            );
            let pts = cdf.points();
            for w in pts.windows(2) {
                ensure!(w[0].0 <= w[1].0);
                ensure!(w[0].1 <= w[1].1);
            }
            ensure!((pts.last().unwrap().1 - 1.0).abs() < 1e-9);
        });
    }

    /// Mean lies between min and max.
    #[test]
    fn mean_within_bounds() {
        forall!(Config::new(0x7ACE_0003), samples in vecs(u64s(0..10_000_000), 1..200) => {
            let durations: Vec<SimDuration> =
                samples.into_iter().map(SimDuration::from_nanos).collect();
            let s = Summary::of(&durations).unwrap();
            ensure!(s.mean >= s.min && s.mean <= s.max);
            ensure!(s.median >= s.min && s.median <= s.max);
        });
    }

    /// Metric totals equal the sum over records.
    #[test]
    fn launch_totals_consistent() {
        forall!(Config::new(0x7ACE_0004), raw in raw_events() => {
            let tl: Timeline = events_from(&raw).into_iter().collect();
            let lm = tl.launch_metrics();
            let klo_sum: SimDuration = lm.launches.iter().map(|l| l.klo).sum();
            ensure_eq!(lm.total_klo(), klo_sum);
            let ket_sum: SimDuration = lm.kernels.iter().map(|k| k.ket).sum();
            ensure_eq!(lm.total_ket(), ket_sum);
        });
    }

    /// A counter is monotone under any sequence of increments.
    #[test]
    fn counter_monotone() {
        forall!(Config::new(0x7ACE_0005), incs in vecs(u64s(0..1_000), 0..100) => {
            let mut c = metrics::Counter::enabled();
            let mut prev = c.total();
            for n in incs {
                c.add(n);
                ensure!(c.total() >= prev, "counter moved down");
                prev = c.total();
            }
        });
    }

    /// Gauge conservation: every `occupy` interval contributes +1 then
    /// −1, so the materialized series ends at zero, never dips negative,
    /// and its peak is bounded by the number of enqueues. The integral
    /// equals the summed per-interval length (Σ per-item queue time).
    #[test]
    fn gauge_conservation() {
        forall!(
            Config::new(0x7ACE_0006),
            raw in vecs((u64s(0..1_000_000), u64s(0..100_000)), 0..100) =>
        {
            let mut g = metrics::Gauge::enabled();
            let mut expected = SimDuration::ZERO;
            for &(start, len) in &raw {
                let s = SimTime::from_nanos(start);
                let e = s + SimDuration::from_nanos(len);
                g.occupy(s, e);
                expected += SimDuration::from_nanos(len);
            }
            let series = g.series("q");
            ensure_eq!(series.final_value(), 0);
            ensure!(series.peak() <= raw.len() as i64);
            let mut running = 0i64;
            for &(_, v) in &series.samples {
                ensure!(v >= 0, "gauge dipped negative");
                running = v;
            }
            ensure_eq!(running, 0);
            ensure_eq!(series.integral(), expected);
        });
    }

    /// The critical-path identity on arbitrary (overlapping, unordered)
    /// launch/kernel timelines: segments always partition
    /// `[first_start, last_end]` exactly and walk time monotonically.
    #[test]
    fn critpath_identity_on_random_timelines() {
        forall!(Config::new(0x7ACE_0008), raw in raw_events() => {
            let tl: Timeline = events_from(&raw).into_iter().collect();
            let p = critpath::extract(&tl, &CausalGraph::new(false));
            ensure!(p.identity_holds(), "identity failed");
            ensure_eq!(p.attribution().total(), tl.span());
            for w in p.segments().windows(2) {
                ensure_eq!(w[0].end, w[1].start);
            }
        });
    }

    /// Raw flight tuples `((arrival, queue), (spdm, doorbell, shape))`
    /// shrunk by the strategies into well-formed skeletons: the wiring
    /// guarantees `dispatch = arrival + queue` and
    /// `settle = dispatch + spdm + doorbell + shape (+ margin)`, which
    /// is exactly what the serving layer records.
    fn skeletons_from(raw: &[((u64, u64), (u64, u64, u64))]) -> Vec<flight::FlightSkeleton> {
        raw.iter()
            .enumerate()
            .map(|(i, &((arrival, queue), (spdm, doorbell, shape)))| {
                let arrival = SimTime::from_nanos(arrival);
                let dispatch = arrival + SimDuration::from_nanos(queue);
                let settle = dispatch + SimDuration::from_nanos(spdm + doorbell + shape);
                flight::FlightSkeleton {
                    req: i as u32,
                    tenant: (i % 3) as u32,
                    gpu: (i % 2) as u32,
                    batch: 1,
                    arrival,
                    dispatch,
                    settle,
                    spdm: SimDuration::from_nanos(spdm),
                    doorbell: SimDuration::from_nanos(doorbell),
                    cold: spdm > 0,
                    rejected: false,
                }
            })
            .collect()
    }

    fn raw_flights() -> impl hcc_check::Strategy<Value = Vec<((u64, u64), (u64, u64, u64))>> {
        vecs(
            (
                (u64s(0..1_000_000_000), u64s(0..50_000_000)),
                (u64s(0..20_000_000), u64s(0..100_000), u64s(0..80_000_000)),
            ),
            1..80,
        )
    }

    fn flight_cfg(seed: u64) -> FlightConfig {
        FlightConfig {
            window: SimDuration::millis(50),
            worst: 3,
            reservoir: 2,
            seed,
        }
    }

    fn record_all(
        cfg: FlightConfig,
        skels: impl IntoIterator<Item = flight::FlightSkeleton>,
    ) -> (FlightLog, usize) {
        let mut rec = FlightRecorder::enabled(cfg);
        let mut n = 0;
        for s in skels {
            rec.record(s);
            n += 1;
        }
        let shape_of: Vec<u32> = (0..n as u32).collect();
        let shapes: Vec<flight::ShapeDecomp> =
            (0..n).map(|_| flight::ShapeDecomp::default()).collect();
        (rec.resolve(&shape_of, &shapes), n)
    }

    /// The per-request span identity on arbitrary well-formed
    /// skeletons: every kept exemplar's spans partition
    /// `settle − arrival` exactly, and the store honours its
    /// `windows × (worst + reservoir)` bound.
    #[test]
    fn flight_span_identity_on_random_skeletons() {
        forall!(Config::new(0x7ACE_0009), raw in raw_flights() => {
            let (log, n) = record_all(flight_cfg(0xF11A), skeletons_from(&raw));
            ensure_eq!(log.recorded, n as u64);
            ensure!(!log.samples.is_empty(), "sampler kept nothing");
            for s in &log.samples {
                ensure!(s.identity_holds(), "request #{} broke the identity", s.req());
            }
            ensure!(log.kept_entries <= log.entry_bound());
        });
    }

    /// The sampler is insertion-order invariant: recording the same
    /// skeletons in reverse yields a byte-identical log (the property
    /// that makes the flight plane thread-count invariant — engine
    /// completions may interleave in any order).
    #[test]
    fn flight_sampler_is_insertion_order_invariant() {
        use hcc_types::json::ToJson as _;
        forall!(Config::new(0x7ACE_000A), raw in raw_flights() => {
            let skels = skeletons_from(&raw);
            let (fwd, _) = record_all(flight_cfg(0xF11A), skels.iter().copied());
            let (rev, _) = record_all(flight_cfg(0xF11A), skels.iter().rev().copied());
            ensure_eq!(fwd.to_json().to_string(), rev.to_json().to_string());
        });
    }

    /// Seeded reservoir replay: the same seed reproduces the log
    /// byte-for-byte, and a different seed may reshuffle the uniform
    /// reservoir but never the tail (worst-K) exemplars.
    #[test]
    fn flight_reservoir_replays_for_a_seed() {
        use hcc_types::json::ToJson as _;
        forall!(
            Config::new(0x7ACE_000B),
            (seed, raw) in (u64s(0..u64::MAX), raw_flights()) =>
        {
            let skels = skeletons_from(&raw);
            let (a, _) = record_all(flight_cfg(seed), skels.iter().copied());
            let (b, _) = record_all(flight_cfg(seed), skels.iter().copied());
            ensure_eq!(a.to_json().to_string(), b.to_json().to_string());
            let (c, _) = record_all(flight_cfg(seed ^ 0x5EED), skels.iter().copied());
            let tails = |log: &FlightLog| -> Vec<u32> {
                log.samples.iter().filter(|s| s.tail).map(|s| s.req()).collect()
            };
            // Tail exemplars must be seed-independent.
            ensure_eq!(tails(&a), tails(&c));
        });
    }

    /// The materialized series is independent of recording order: any
    /// permutation of the same intervals yields the identical snapshot
    /// (the property that makes obs-enabled replay thread-count
    /// invariant).
    #[test]
    fn gauge_series_order_independent() {
        forall!(
            Config::new(0x7ACE_0007),
            raw in vecs((u64s(0..1_000_000), u64s(1..100_000)), 1..60) =>
        {
            let mut fwd = metrics::Gauge::enabled();
            for &(start, len) in &raw {
                let s = SimTime::from_nanos(start);
                fwd.occupy(s, s + SimDuration::from_nanos(len));
            }
            let mut rev = metrics::Gauge::enabled();
            for &(start, len) in raw.iter().rev() {
                let s = SimTime::from_nanos(start);
                rev.occupy(s, s + SimDuration::from_nanos(len));
            }
            ensure_eq!(fwd.series("q"), rev.series("q"));
        });
    }
}
