//! Critical-path extraction and per-resource attribution.
//!
//! Walks the trace backwards from the last event, at every instant
//! charging the wall clock to the *innermost* active span (an AES-GCM
//! slot nested in a blocking-copy umbrella beats the umbrella; a kernel
//! beats the host sync that waits on it), and attributing uncovered
//! intervals — places where the virtual clock advanced without an event,
//! like the KQT window between a doorbell and execution — by the event
//! they precede, with the causal edges confirming the handoff. Every
//! critical nanosecond lands in exactly one [`ResourceClass`], so the
//! identity `Σ segments == observed span P` holds by construction.

use std::collections::BinaryHeap;

use hcc_types::json::{Json, ToJson};
use hcc_types::{FaultSite, SimDuration, SimTime};

use crate::causal::{CausalGraph, EventId};
use crate::event::EventKind;
use crate::timeline::Timeline;

/// The hardware/software resource a critical nanosecond is blamed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceClass {
    /// Host driver work: launches, allocations, syncs, hypercalls.
    HostDriver,
    /// CPU AES-GCM staging (and GCM-integrity recovery).
    Crypto,
    /// Bounce-buffer (swiotlb) reservation and conversion.
    BouncePool,
    /// Channel ring / command processor / dispatch (LQT + KQT legs).
    RingCp,
    /// Copy-engine transfers.
    CopyEngine,
    /// Compute-engine execution (KET).
    ComputeEngine,
    /// UVM far-fault servicing and migration.
    Uvm,
}

impl ResourceClass {
    /// Every class, in display order.
    pub const ALL: [ResourceClass; 7] = [
        ResourceClass::HostDriver,
        ResourceClass::Crypto,
        ResourceClass::BouncePool,
        ResourceClass::RingCp,
        ResourceClass::CopyEngine,
        ResourceClass::ComputeEngine,
        ResourceClass::Uvm,
    ];

    /// Number of classes.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name (JSON keys).
    pub fn name(&self) -> &'static str {
        match self {
            ResourceClass::HostDriver => "host_driver",
            ResourceClass::Crypto => "crypto",
            ResourceClass::BouncePool => "bounce_pool",
            ResourceClass::RingCp => "ring_cp",
            ResourceClass::CopyEngine => "copy_engine",
            ResourceClass::ComputeEngine => "compute_engine",
            ResourceClass::Uvm => "uvm",
        }
    }

    /// Short column label for tables.
    pub fn short(&self) -> &'static str {
        match self {
            ResourceClass::HostDriver => "host",
            ResourceClass::Crypto => "crypto",
            ResourceClass::BouncePool => "bounce",
            ResourceClass::RingCp => "ring",
            ResourceClass::CopyEngine => "copy",
            ResourceClass::ComputeEngine => "compute",
            ResourceClass::Uvm => "uvm",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|&r| r == self).unwrap()
    }
}

impl std::fmt::Display for ResourceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl ToJson for ResourceClass {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

/// Which resource an event's span occupies.
pub fn resource_of(kind: &EventKind) -> ResourceClass {
    match kind {
        EventKind::Launch { .. }
        | EventKind::Alloc { .. }
        | EventKind::Free { .. }
        | EventKind::Sync
        | EventKind::Hypercall { .. } => ResourceClass::HostDriver,
        EventKind::Kernel { .. } => ResourceClass::ComputeEngine,
        EventKind::Memcpy { .. } => ResourceClass::CopyEngine,
        EventKind::Crypto { .. } => ResourceClass::Crypto,
        EventKind::BounceReserve { .. } => ResourceClass::BouncePool,
        EventKind::UvmFault { .. } => ResourceClass::Uvm,
        EventKind::FaultInjected { site, .. }
        | EventKind::Retry { site, .. }
        | EventKind::Degraded { site } => site_resource(*site),
    }
}

fn site_resource(site: FaultSite) -> ResourceClass {
    match site {
        FaultSite::GcmTagH2D | FaultSite::GcmTagD2H => ResourceClass::Crypto,
        FaultSite::BounceExhausted => ResourceClass::BouncePool,
        FaultSite::RingDoorbell => ResourceClass::RingCp,
        FaultSite::UvmMigration => ResourceClass::Uvm,
    }
}

/// Nesting priority: when spans overlap, the higher-priority one is the
/// *exposed* occupant of the instant. Recovery spans expose their fault
/// site; UVM service exposes inside its kernel; device engines hide
/// overlapped host work (the α/β overlap of the paper's Fig. 3 model);
/// nested staging (crypto, bounce, hypercalls) beats its blocking-copy
/// umbrella; a host sync never hides what it waits on.
fn priority(kind: &EventKind) -> u8 {
    match kind {
        EventKind::FaultInjected { .. } | EventKind::Retry { .. } | EventKind::Degraded { .. } => 6,
        EventKind::UvmFault { .. } => 5,
        EventKind::Kernel { .. } => 4,
        EventKind::Crypto { .. }
        | EventKind::BounceReserve { .. }
        | EventKind::Hypercall { .. } => 3,
        EventKind::Memcpy { .. } => 2,
        EventKind::Launch { .. } | EventKind::Alloc { .. } | EventKind::Free { .. } => 1,
        EventKind::Sync => 0,
    }
}

/// One maximal critical-path interval charged to a single resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
    /// Resource the interval is charged to.
    pub resource: ResourceClass,
    /// Event occupying the interval (`None` for attributed gaps).
    pub event: Option<EventId>,
}

impl Segment {
    /// Interval length.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Per-resource critical time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Attribution {
    totals: [SimDuration; ResourceClass::COUNT],
}

impl Attribution {
    /// Critical time charged to `r`.
    pub fn get(&self, r: ResourceClass) -> SimDuration {
        self.totals[r.index()]
    }

    /// Charges `d` more critical time to `r` — how consumers outside the
    /// extractor (the flight recorder's shape decompositions, tests)
    /// assemble an attribution by hand.
    pub fn add(&mut self, r: ResourceClass, d: SimDuration) {
        self.totals[r.index()] += d;
    }

    /// Sum over every class (equals the observed span by the identity).
    pub fn total(&self) -> SimDuration {
        self.totals.iter().copied().sum()
    }

    /// `(class, time)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceClass, SimDuration)> + '_ {
        ResourceClass::ALL.iter().map(|&r| (r, self.get(r)))
    }
}

impl ToJson for Attribution {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(r, t)| (r.name().to_string(), t.to_json()))
                .collect(),
        )
    }
}

/// The extracted critical path of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CritPath {
    segments: Vec<Segment>,
    first: SimTime,
    last: SimTime,
    causal_links: usize,
}

impl CritPath {
    /// Segments in chronological order (they partition `[first, last]`).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Trace start.
    pub fn first(&self) -> SimTime {
        self.first
    }

    /// Trace end.
    pub fn last(&self) -> SimTime {
        self.last
    }

    /// The observed span `P = last - first`.
    pub fn span(&self) -> SimDuration {
        self.last - self.first
    }

    /// Per-resource attribution of every critical nanosecond.
    pub fn attribution(&self) -> Attribution {
        let mut a = Attribution::default();
        for s in &self.segments {
            a.totals[s.resource.index()] += s.duration();
        }
        a
    }

    /// Distinct events on the path, in chronological order.
    pub fn events_on_path(&self) -> Vec<EventId> {
        let mut out: Vec<EventId> = Vec::new();
        for s in &self.segments {
            if let Some(id) = s.event {
                if out.last() != Some(&id) {
                    out.push(id);
                }
            }
        }
        out
    }

    /// How many consecutive path hops are confirmed by a recorded causal
    /// edge (zero when collection was disabled).
    pub fn causal_links(&self) -> usize {
        self.causal_links
    }

    /// Verifies the enforced identity: segments are time-monotonic,
    /// gap-free, and sum exactly to the observed span.
    pub fn identity_holds(&self) -> bool {
        let mut cursor = self.first;
        for s in &self.segments {
            if s.start != cursor || s.end < s.start {
                return false;
            }
            cursor = s.end;
        }
        cursor == self.last
            && self.attribution().total() == self.span()
            && self
                .segments
                .iter()
                .map(Segment::duration)
                .sum::<SimDuration>()
                == self.span()
    }
}

/// Extracts the critical path of `timeline`, consulting `graph` for the
/// typed handoffs between path events.
pub fn extract(timeline: &Timeline, graph: &CausalGraph) -> CritPath {
    let events = timeline.events();
    let first = events.iter().map(|e| e.start).min();
    let last = events.iter().map(|e| e.end).max();
    let (Some(first), Some(last)) = (first, last) else {
        return CritPath {
            segments: Vec::new(),
            first: SimTime::ZERO,
            last: SimTime::ZERO,
            causal_links: 0,
        };
    };
    if first == last {
        return CritPath {
            segments: Vec::new(),
            first,
            last,
            causal_links: 0,
        };
    }

    // Positive-width events in start order; zero-width markers never
    // occupy time.
    let mut order: Vec<usize> = (0..events.len())
        .filter(|&i| events[i].end > events[i].start)
        .collect();
    order.sort_by_key(|&i| events[i].start);

    // Elementary intervals between consecutive span boundaries.
    let mut bounds: Vec<SimTime> = Vec::with_capacity(order.len() * 2 + 2);
    bounds.push(first);
    bounds.push(last);
    for &i in &order {
        bounds.push(events[i].start);
        bounds.push(events[i].end);
    }
    bounds.sort_unstable();
    bounds.dedup();

    // Backward-walk equivalent, computed as a sweep: at each elementary
    // interval the innermost active event (max priority, then latest
    // start, then latest push) owns the critical time. A lazy max-heap
    // keeps the sweep O(E log E).
    let mut heap: BinaryHeap<(u8, SimTime, usize)> = BinaryHeap::new();
    let mut next = 0usize;
    let mut raw: Vec<(SimTime, SimTime, Option<usize>)> = Vec::with_capacity(bounds.len());
    for w in bounds.windows(2) {
        let (a, b) = (w[0], w[1]);
        while next < order.len() && events[order[next]].start <= a {
            let i = order[next];
            heap.push((priority(&events[i].kind), events[i].start, i));
            next += 1;
        }
        while let Some(&(_, _, i)) = heap.peek() {
            if events[i].end <= a {
                heap.pop();
            } else {
                break;
            }
        }
        raw.push((a, b, heap.peek().map(|&(_, _, i)| i)));
    }

    let mut segments: Vec<Segment> = Vec::new();
    for (idx, &(a, b, cover)) in raw.iter().enumerate() {
        match cover {
            Some(i) => push_merged(
                &mut segments,
                Segment {
                    start: a,
                    end: b,
                    resource: resource_of(&events[i].kind),
                    event: Some(EventId(i)),
                },
            ),
            None => {
                // The event this gap precedes starts exactly at `b` (the
                // next covered interval's owner); a trailing gap has none.
                let succ = raw[idx + 1..].iter().find_map(|&(_, _, c)| c);
                attribute_gap(timeline, a, b, succ, &mut segments);
            }
        }
    }

    // Count path hops the causal DAG explains: consecutive path events
    // linked by a recorded edge.
    let mut causal_links = 0usize;
    let path: Vec<EventId> = {
        let mut out: Vec<EventId> = Vec::new();
        for s in &segments {
            if let Some(id) = s.event {
                if out.last() != Some(&id) {
                    out.push(id);
                }
            }
        }
        out
    };
    for pair in path.windows(2) {
        if graph.predecessors(pair[1]).any(|e| e.from == pair[0]) {
            causal_links += 1;
        }
    }

    CritPath {
        segments,
        first,
        last,
        causal_links,
    }
}

/// Charges an uncovered interval `[a, b)` by what it waited for.
fn attribute_gap(
    timeline: &Timeline,
    a: SimTime,
    b: SimTime,
    succ: Option<usize>,
    segments: &mut Vec<Segment>,
) {
    let events = timeline.events();
    let Some(s) = succ else {
        // Trailing host time after the last span.
        push_merged(
            segments,
            Segment {
                start: a,
                end: b,
                resource: ResourceClass::HostDriver,
                event: None,
            },
        );
        return;
    };
    match &events[s].kind {
        // The doorbell→execution window: CP service + dispatch (KQT).
        EventKind::Kernel { .. } | EventKind::Memcpy { .. } => push_merged(
            segments,
            Segment {
                start: a,
                end: b,
                resource: ResourceClass::RingCp,
                event: None,
            },
        ),
        // Pre-launch stall: up to `queue_wait` of it is ring backpressure
        // (LQT); any remainder is host-side issue gap.
        EventKind::Launch { queue_wait, .. } => {
            let gap = b - a;
            if gap <= *queue_wait {
                push_merged(
                    segments,
                    Segment {
                        start: a,
                        end: b,
                        resource: ResourceClass::RingCp,
                        event: None,
                    },
                );
            } else {
                let split = b - *queue_wait;
                push_merged(
                    segments,
                    Segment {
                        start: a,
                        end: split,
                        resource: ResourceClass::HostDriver,
                        event: None,
                    },
                );
                if !queue_wait.is_zero() {
                    push_merged(
                        segments,
                        Segment {
                            start: split,
                            end: b,
                            resource: ResourceClass::RingCp,
                            event: None,
                        },
                    );
                }
            }
        }
        // Waiting for a crypto-engine slot.
        EventKind::Crypto { .. } => push_merged(
            segments,
            Segment {
                start: a,
                end: b,
                resource: ResourceClass::Crypto,
                event: None,
            },
        ),
        EventKind::BounceReserve { .. } => push_merged(
            segments,
            Segment {
                start: a,
                end: b,
                resource: ResourceClass::BouncePool,
                event: None,
            },
        ),
        _ => push_merged(
            segments,
            Segment {
                start: a,
                end: b,
                resource: ResourceClass::HostDriver,
                event: None,
            },
        ),
    }
}

fn push_merged(segments: &mut Vec<Segment>, seg: Segment) {
    if seg.end == seg.start {
        return;
    }
    if let Some(prev) = segments.last_mut() {
        if prev.end == seg.start && prev.resource == seg.resource && prev.event == seg.event {
            prev.end = seg.end;
            return;
        }
    }
    segments.push(seg);
}

hcc_types::impl_to_json!(Segment {
    start,
    end,
    resource,
    event
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::{CausalEdge, EdgeKind};
    use crate::event::{KernelId, TraceEvent};
    use hcc_types::{ByteSize, CopyKind, HostMemKind};

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::micros(us)
    }

    fn launch(kernel: u32, qw_us: u64, start: u64, end: u64) -> TraceEvent {
        TraceEvent::new(
            EventKind::Launch {
                kernel: KernelId(kernel),
                queue_wait: SimDuration::micros(qw_us),
                first: false,
            },
            t(start),
            t(end),
        )
    }

    fn kernel(id: u32, start: u64, end: u64) -> TraceEvent {
        TraceEvent::new(
            EventKind::Kernel {
                kernel: KernelId(id),
                uvm: false,
            },
            t(start),
            t(end),
        )
    }

    #[test]
    fn empty_timeline_is_trivially_consistent() {
        let p = extract(&Timeline::new(), &CausalGraph::new(true));
        assert!(p.segments().is_empty());
        assert!(p.identity_holds());
        assert_eq!(p.span(), SimDuration::ZERO);
    }

    #[test]
    fn gap_between_launch_and_kernel_is_ring_cp() {
        let mut tl = Timeline::new();
        tl.push(launch(0, 0, 0, 10));
        tl.push(kernel(0, 14, 30)); // 4 µs KQT gap
        let p = extract(&tl, &CausalGraph::new(true));
        assert!(p.identity_holds());
        let a = p.attribution();
        assert_eq!(a.get(ResourceClass::HostDriver), SimDuration::micros(10));
        assert_eq!(a.get(ResourceClass::RingCp), SimDuration::micros(4));
        assert_eq!(a.get(ResourceClass::ComputeEngine), SimDuration::micros(16));
        assert_eq!(a.total(), p.span());
    }

    #[test]
    fn nested_spans_expose_the_innermost() {
        let mut tl = Timeline::new();
        // Blocking-copy umbrella [0, 100] with a crypto slot [10, 40] and
        // a bounce reservation [40, 55] nested inside.
        tl.push(TraceEvent::new(
            EventKind::Memcpy {
                kind: CopyKind::H2D,
                bytes: ByteSize::mib(1),
                mem: HostMemKind::Pageable,
                managed: false,
            },
            t(0),
            t(100),
        ));
        tl.push(TraceEvent::new(
            EventKind::Crypto {
                bytes: ByteSize::mib(1),
                encrypt: true,
            },
            t(10),
            t(40),
        ));
        tl.push(TraceEvent::new(
            EventKind::BounceReserve {
                bytes: ByteSize::mib(1),
                converted: true,
            },
            t(40),
            t(55),
        ));
        let p = extract(&tl, &CausalGraph::new(true));
        assert!(p.identity_holds());
        let a = p.attribution();
        assert_eq!(a.get(ResourceClass::Crypto), SimDuration::micros(30));
        assert_eq!(a.get(ResourceClass::BouncePool), SimDuration::micros(15));
        assert_eq!(a.get(ResourceClass::CopyEngine), SimDuration::micros(55));
        assert_eq!(a.total(), SimDuration::micros(100));
    }

    #[test]
    fn kernel_hides_the_sync_that_waits_on_it() {
        let mut tl = Timeline::new();
        tl.push(kernel(0, 0, 50));
        tl.push(TraceEvent::new(EventKind::Sync, t(5), t(50)));
        let p = extract(&tl, &CausalGraph::new(true));
        assert!(p.identity_holds());
        let a = p.attribution();
        assert_eq!(a.get(ResourceClass::ComputeEngine), SimDuration::micros(50));
        assert_eq!(a.get(ResourceClass::HostDriver), SimDuration::ZERO);
    }

    #[test]
    fn launch_gap_splits_queue_wait_from_host_gap() {
        let mut tl = Timeline::new();
        tl.push(kernel(0, 0, 10));
        // 20 µs of nothing, then a launch whose LQT was 6 µs: the last
        // 6 µs of the gap are ring backpressure, the first 14 host issue.
        tl.push(launch(1, 6, 30, 35));
        let p = extract(&tl, &CausalGraph::new(true));
        assert!(p.identity_holds());
        let a = p.attribution();
        assert_eq!(a.get(ResourceClass::HostDriver), SimDuration::micros(19));
        assert_eq!(a.get(ResourceClass::RingCp), SimDuration::micros(6));
    }

    #[test]
    fn zero_width_markers_extend_nothing_but_span_everything() {
        let mut tl = Timeline::new();
        tl.push(kernel(0, 0, 10));
        // A zero-width fault marker past the last span stretches the
        // observed span; the stretch is host time.
        tl.push(TraceEvent::new(
            EventKind::FaultInjected {
                site: FaultSite::RingDoorbell,
                attempts: 1,
            },
            t(12),
            t(12),
        ));
        let p = extract(&tl, &CausalGraph::new(true));
        assert!(p.identity_holds());
        assert_eq!(p.span(), SimDuration::micros(12));
        assert_eq!(
            p.attribution().get(ResourceClass::HostDriver),
            SimDuration::micros(2)
        );
    }

    #[test]
    fn retry_spans_charge_their_fault_site() {
        let mut tl = Timeline::new();
        tl.push(TraceEvent::new(
            EventKind::Memcpy {
                kind: CopyKind::H2D,
                bytes: ByteSize::mib(1),
                mem: HostMemKind::Pageable,
                managed: false,
            },
            t(0),
            t(60),
        ));
        tl.push(TraceEvent::new(
            EventKind::Retry {
                site: FaultSite::BounceExhausted,
                attempt: 1,
            },
            t(5),
            t(20),
        ));
        let p = extract(&tl, &CausalGraph::new(true));
        let a = p.attribution();
        assert_eq!(a.get(ResourceClass::BouncePool), SimDuration::micros(15));
        assert_eq!(a.get(ResourceClass::CopyEngine), SimDuration::micros(45));
    }

    #[test]
    fn uvm_fault_exposes_inside_its_kernel() {
        let mut tl = Timeline::new();
        tl.push(kernel(0, 0, 100));
        tl.push(TraceEvent::new(
            EventKind::UvmFault {
                kernel: KernelId(0),
                pages: 64,
                bytes: ByteSize::kib(256),
            },
            t(0),
            t(30),
        ));
        let p = extract(&tl, &CausalGraph::new(true));
        assert!(p.identity_holds());
        let a = p.attribution();
        assert_eq!(a.get(ResourceClass::Uvm), SimDuration::micros(30));
        assert_eq!(a.get(ResourceClass::ComputeEngine), SimDuration::micros(70));
    }

    #[test]
    fn causal_edges_confirm_path_hops() {
        let mut tl = Timeline::new();
        let l = tl.push(launch(0, 0, 0, 10));
        let k = tl.push(kernel(0, 14, 30));
        let mut g = CausalGraph::new(true);
        g.push(CausalEdge::new(l, k, EdgeKind::LaunchToExec).with_wait(SimDuration::micros(4)));
        let p = extract(&tl, &g);
        assert_eq!(p.events_on_path(), vec![l, k]);
        assert_eq!(p.causal_links(), 1);
        // Without edges the path is identical but unconfirmed.
        let bare = extract(&tl, &CausalGraph::new(true));
        assert_eq!(bare.causal_links(), 0);
        assert_eq!(bare.segments(), p.segments());
    }
}
