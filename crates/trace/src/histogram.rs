//! Log-scale duration histograms — compact summaries of KLO/KET
//! distributions for terminal output (the textual cousin of Fig. 11).

use hcc_types::SimDuration;

/// A base-2 log-scale histogram over durations.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` nanoseconds; bucket 0 additionally
/// absorbs zero-length samples.
///
/// ```
/// use hcc_trace::Histogram;
/// use hcc_types::SimDuration;
///
/// let mut h = Histogram::new();
/// h.record(SimDuration::micros(5));
/// h.record(SimDuration::micros(6));
/// h.record(SimDuration::millis(1));
/// assert_eq!(h.count(), 3);
/// assert!(h.render(20).contains('#'));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    total: SimDuration,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Builds a histogram from samples.
    pub fn from_durations<I: IntoIterator<Item = SimDuration>>(samples: I) -> Self {
        let mut h = Histogram::new();
        for s in samples {
            h.record(s);
        }
        h
    }

    fn bucket_of(d: SimDuration) -> usize {
        let ns = d.as_nanos();
        if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros()) as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        let idx = Self::bucket_of(d);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.total += d;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of every recorded sample (not bucket-quantized) — what
    /// a Prometheus `_sum` line must carry for rate math to be honest.
    pub fn total(&self) -> SimDuration {
        self.total
    }

    /// Mean sample.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.total / self.count
        }
    }

    /// Nearest-rank `p`-quantile (clamped to `[0, 1]`), resolved to the
    /// lower bound of the bucket holding that rank — the log2 resolution
    /// is the price of the compact representation. Total on every input:
    /// an empty histogram yields `SimDuration::ZERO`, and a single-sample
    /// histogram yields its bucket's lower bound for every `p`.
    pub fn quantile(&self, p: f64) -> SimDuration {
        let Some(index) = crate::quantile::nearest_rank_index(self.count as usize, p) else {
            return SimDuration::ZERO;
        };
        let rank = index as u64 + 1;
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return SimDuration::from_nanos(1u64 << i);
            }
        }
        SimDuration::from_nanos(1u64 << (self.buckets.len().max(1) - 1))
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn buckets(&self) -> Vec<(SimDuration, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (SimDuration::from_nanos(1u64 << i), *c))
            .collect()
    }

    /// Renders an ASCII histogram with bars up to `width` characters.
    pub fn render(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let max = self.buckets.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return "(empty)\n".to_string();
        }
        for (lower, count) in self.buckets() {
            let bar_len = ((count as f64 / max as f64) * width as f64).ceil() as usize;
            let _ = writeln!(
                out,
                "{:>10} | {:<width$} {}",
                lower.to_string(),
                "#".repeat(bar_len),
                count,
                width = width
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_nanos(1));
        h.record(SimDuration::from_nanos(1023));
        h.record(SimDuration::from_nanos(1024));
        h.record(SimDuration::from_nanos(2047));
        let buckets = h.buckets();
        // 1ns -> bucket 0; 1023 -> bucket 9 (512..1024); 1024+2047 -> bucket 10.
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[2], (SimDuration::from_nanos(1024), 2));
    }

    #[test]
    fn zero_goes_to_bucket_zero() {
        let mut h = Histogram::new();
        h.record(SimDuration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.buckets()[0].0, SimDuration::from_nanos(1));
    }

    #[test]
    fn mean_and_count() {
        let h = Histogram::from_durations([SimDuration::micros(2), SimDuration::micros(4)]);
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), SimDuration::micros(3));
        assert_eq!(Histogram::new().mean(), SimDuration::ZERO);
    }

    #[test]
    fn quantile_walks_buckets() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(SimDuration::from_nanos(100)); // bucket [64, 128)
        }
        h.record(SimDuration::micros(100)); // bucket [65536, 131072)
        assert_eq!(h.quantile(0.5), SimDuration::from_nanos(64));
        assert_eq!(h.quantile(0.99), SimDuration::from_nanos(64));
        assert_eq!(h.quantile(0.999), SimDuration::from_nanos(65_536));
        assert_eq!(h.quantile(1.0), SimDuration::from_nanos(65_536));
    }

    #[test]
    fn quantile_degenerate_inputs_are_defined() {
        let empty = Histogram::new();
        for p in [0.0, 0.5, 0.99, 0.999] {
            assert_eq!(empty.quantile(p), SimDuration::ZERO);
        }
        let single = Histogram::from_durations([SimDuration::micros(3)]);
        for p in [0.0, 0.5, 0.99, 0.999] {
            // One sample in [2048, 4096): every quantile is its bucket floor.
            assert_eq!(single.quantile(p), SimDuration::from_nanos(2_048), "p={p}");
        }
        // Zero-length samples land in bucket 0 (floor 1ns by convention).
        let zeros = Histogram::from_durations([SimDuration::ZERO]);
        assert_eq!(zeros.quantile(0.999), SimDuration::from_nanos(1));
    }

    #[test]
    fn render_scales_bars() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(SimDuration::micros(1));
        }
        h.record(SimDuration::millis(1));
        let text = h.render(20);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let hashes = |l: &str| l.matches('#').count();
        assert!(hashes(lines[0]) > hashes(lines[1]));
        assert_eq!(Histogram::new().render(10), "(empty)\n");
    }
}
