//! Timeline container and metric extraction: from raw events to the
//! paper's KLO / LQT / KQT / KET / T_mem / T_other quantities.

use hcc_types::{ByteSize, CopyKind, MemSpace, SimDuration, SimTime};

use crate::causal::EventId;
use crate::event::{EventKind, KernelId, TraceEvent};

/// An ordered collection of trace events for one application run.
///
/// Events may be pushed out of order (different engines finish at
/// different times); extraction sorts internally where needed.
///
/// Internally this is an *arena*: an append-only, id-stable contiguous
/// store that folds every aggregate the extraction API needs into running
/// state at push time. `span()`/`end()` read two words, `mem_metrics()`
/// copies a struct, and `launch_metrics()` joins pre-split launch/kernel
/// record lists — none of them re-walk the event array. All aggregates are
/// integer-nanosecond sums or min/max folds, so maintaining them
/// incrementally is *exact*, not approximate: every accessor returns
/// byte-identical results to a full scan of `events()`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    events: Vec<TraceEvent>,
    /// Earliest `start` seen (`None` while empty).
    min_start: Option<SimTime>,
    /// Latest `end` seen.
    max_end: SimTime,
    /// Running memory-path totals (order-independent integer sums).
    mem: MemMetrics,
    /// Launch records in push order; `LaunchMetrics` sorts a copy.
    launches: Vec<LaunchRecord>,
    /// Kernel records in push order with `kqt` unresolved (zero); the
    /// correlation join fills it at extraction time.
    kernels: Vec<KernelRecord>,
    /// `Sync` spans in push order, for the sync/kernel overlap fold.
    sync_spans: Vec<(SimTime, SimTime)>,
    /// `Kernel` spans in push order, ditto.
    kernel_spans: Vec<(SimTime, SimTime)>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Creates an empty timeline with room for `n` events before the
    /// arena reallocates.
    pub fn with_capacity(n: usize) -> Self {
        Timeline {
            events: Vec::with_capacity(n),
            ..Timeline::default()
        }
    }

    /// Reserves room for at least `n` more events, of which `launches`
    /// are expected to be launch/kernel pairs, so a caller that can
    /// estimate a program's shape up front (e.g. the workload runner)
    /// avoids arena and record-list regrowth memcpys mid-run.
    pub fn reserve(&mut self, n: usize, launches: usize) {
        self.events.reserve(n);
        self.launches.reserve(launches);
        self.kernels.reserve(launches);
        self.kernel_spans.reserve(launches);
        self.sync_spans.reserve(launches);
    }

    /// Appends an event, returning its id for causal-edge linking.
    #[inline]
    pub fn push(&mut self, event: TraceEvent) -> EventId {
        self.fold(&event);
        self.events.push(event);
        EventId(self.events.len() - 1)
    }

    /// Folds one event into the running aggregates.
    fn fold(&mut self, e: &TraceEvent) {
        self.min_start = Some(match self.min_start {
            Some(s) => s.min(e.start),
            None => e.start,
        });
        self.max_end = self.max_end.max(e.end);
        let m = &mut self.mem;
        match &e.kind {
            EventKind::Launch {
                kernel,
                queue_wait,
                first,
            } => {
                self.launches.push(LaunchRecord {
                    kernel: *kernel,
                    start: e.start,
                    klo: e.duration(),
                    lqt: *queue_wait,
                    first: *first,
                    correlation: e.correlation,
                });
            }
            EventKind::Kernel { kernel, uvm } => {
                self.kernels.push(KernelRecord {
                    kernel: *kernel,
                    start: e.start,
                    ket: e.duration(),
                    kqt: SimDuration::ZERO,
                    uvm: *uvm,
                    correlation: e.correlation,
                });
                self.kernel_spans.push((e.start, e.end));
            }
            EventKind::Memcpy {
                kind,
                bytes,
                managed,
                ..
            } => {
                let slot = match kind {
                    CopyKind::H2D => &mut m.h2d,
                    CopyKind::D2H => &mut m.d2h,
                    CopyKind::D2D => &mut m.d2d,
                };
                *slot += e.duration();
                m.copy_bytes += *bytes;
                if *managed {
                    m.managed_copy += e.duration();
                }
            }
            EventKind::Alloc { space, .. } => match space {
                MemSpace::Host => m.hmalloc += e.duration(),
                MemSpace::Device => m.dmalloc += e.duration(),
                MemSpace::Managed => m.managed_alloc += e.duration(),
            },
            EventKind::Free { space, .. } => match space {
                MemSpace::Managed => m.managed_free += e.duration(),
                _ => m.free += e.duration(),
            },
            EventKind::Sync => {
                m.sync += e.duration();
                self.sync_spans.push((e.start, e.end));
            }
            EventKind::Crypto { bytes, .. } => {
                m.crypto += e.duration();
                m.crypto_bytes += *bytes;
            }
            EventKind::Hypercall { .. } => {
                m.hypercalls += 1;
                m.hypercall_time += e.duration();
            }
            EventKind::UvmFault { pages, bytes, .. } => {
                m.uvm_fault += e.duration();
                m.uvm_pages += pages;
                m.uvm_bytes += *bytes;
            }
            EventKind::FaultInjected { attempts, .. } => {
                m.faults_injected += u64::from(*attempts);
                m.fault_time += e.duration();
            }
            EventKind::Retry { .. } => {
                m.fault_retries += 1;
                m.fault_time += e.duration();
            }
            EventKind::Degraded { .. } => {
                m.fault_degrades += 1;
                m.fault_time += e.duration();
            }
            // Reservation windows are nested inside their copy's span,
            // which `copy_total` already counts.
            EventKind::BounceReserve { .. } => {}
        }
    }

    /// All events, in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The event behind an id handed out by [`Timeline::push`].
    pub fn get(&self, id: EventId) -> Option<&TraceEvent> {
        self.events.get(id.0)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Wall-clock span from the earliest start to the latest end. This is
    /// the paper's end-to-end `P` for a full application trace.
    pub fn span(&self) -> SimDuration {
        match self.min_start {
            Some(s) => self.max_end - s,
            None => SimDuration::ZERO,
        }
    }

    /// Latest event end (completion time).
    pub fn end(&self) -> SimTime {
        self.max_end
    }

    /// Extracts the per-launch / per-kernel metric records.
    ///
    /// The KQT join runs over the pre-split record lists with an
    /// FNV-keyed map (correlation ids are simulator-assigned small
    /// integers, so SipHash buys nothing), in one pass per list.
    pub fn launch_metrics(&self) -> LaunchMetrics {
        let mut kernels = self.kernels.clone();
        // The runtime allocates correlation ids monotonically and pushes
        // a launch before its kernel, so both record lists arrive sorted
        // by correlation and the KQT join is a linear merge. A
        // duplicated correlation resolves to the *last* launch, exactly
        // as the scan-based extraction did; out-of-order records (e.g. a
        // hand-built timeline) fall back to the FNV map.
        let sorted = self
            .launches
            .windows(2)
            .all(|w| w[0].correlation <= w[1].correlation)
            && kernels
                .windows(2)
                .all(|w| w[0].correlation <= w[1].correlation);
        if sorted {
            let mut j = 0usize;
            for k in &mut kernels {
                while j < self.launches.len() && self.launches[j].correlation < k.correlation {
                    j += 1;
                }
                let mut hit = None;
                let mut jj = j;
                while jj < self.launches.len() && self.launches[jj].correlation == k.correlation {
                    hit = Some(jj);
                    jj += 1;
                }
                k.kqt = match hit {
                    Some(i) => {
                        let l = &self.launches[i];
                        k.start.saturating_since(l.start + l.klo)
                    }
                    None => SimDuration::ZERO,
                };
            }
        } else {
            let mut launch_end: hcc_types::hash::FnvHashMap<u64, SimTime> =
                hcc_types::hash::FnvHashMap::with_capacity_and_hasher(
                    self.launches.len(),
                    hcc_types::hash::FnvBuildHasher,
                );
            for l in &self.launches {
                launch_end.insert(l.correlation, l.start + l.klo);
            }
            for k in &mut kernels {
                k.kqt = launch_end
                    .get(&k.correlation)
                    .map(|le| k.start.saturating_since(*le))
                    .unwrap_or(SimDuration::ZERO);
            }
        }
        let mut launches = self.launches.clone();
        launches.sort_by_key(|l| l.start);
        kernels.sort_by_key(|k| k.start);
        LaunchMetrics { launches, kernels }
    }

    /// Extracts memory-path metrics (Fig. 5/6 inputs).
    pub fn mem_metrics(&self) -> MemMetrics {
        self.mem
    }

    /// Aggregates the four phases of the Fig. 3 performance model, plus
    /// the observed end-to-end span.
    ///
    /// Per the paper, synchronization that chronologically overlaps
    /// kernel execution belongs to part C; only the *exposed* remainder
    /// counts toward `T_other`.
    pub fn phase_totals(&self) -> PhaseTotals {
        let lm = self.launch_metrics();
        let mm = self.mem_metrics();
        let exposed_sync = mm.sync.saturating_sub(self.sync_kernel_overlap());
        PhaseTotals {
            t_mem: mm.copy_total(),
            t_launch: lm.total_klo() + lm.total_lqt(),
            t_kernel: lm.total_ket() + lm.total_kqt(),
            t_other: mm.management_total() + exposed_sync,
            t_fault: mm.fault_time,
            span: self.span(),
        }
    }

    /// Total time during which `Sync` events overlap `Kernel` events,
    /// summed over every (sync, kernel) span pair.
    ///
    /// The naive pairwise scan is O(|sync|·|kernel|) — quadratic for
    /// sync-per-iteration apps where both lists grow with the launch
    /// count. This computes the *identical* integer total by sorting
    /// kernel starts and ends once and resolving each sync span `(ss,
    /// se)` with four binary searches over prefix sums:
    ///
    /// ```text
    /// Σ max(0, min(se, ke) − max(ss, ks))
    ///   = [ Σ_{ke > ss} min(se, ke) − |{ks ≥ se}|·se ]
    ///   − [ Σ_{ks < se} max(ss, ks) − |{ke ≤ ss}|·ss ]
    /// ```
    ///
    /// Pairs with `ks ≥ se` contribute `min = se` to the left bracket
    /// and pairs with `ke ≤ ss` contribute `max = ss` to the right, so
    /// both non-overlapping families cancel exactly; every surviving
    /// pair's term is its nonnegative overlap. Integer addition is
    /// order-independent, so the result matches the pairwise sum bit
    /// for bit.
    fn sync_kernel_overlap(&self) -> SimDuration {
        if self.sync_spans.is_empty() || self.kernel_spans.is_empty() {
            return SimDuration::ZERO;
        }
        let mut starts: Vec<u64> = self.kernel_spans.iter().map(|s| s.0.as_nanos()).collect();
        let mut ends: Vec<u64> = self.kernel_spans.iter().map(|s| s.1.as_nanos()).collect();
        starts.sort_unstable();
        ends.sort_unstable();
        fn prefix(v: &[u64]) -> Vec<u128> {
            let mut p = Vec::with_capacity(v.len() + 1);
            let mut acc = 0u128;
            p.push(acc);
            for &x in v {
                acc += u128::from(x);
                p.push(acc);
            }
            p
        }
        let pstarts = prefix(&starts);
        let pends = prefix(&ends);
        let n = starts.len();
        let mut total = 0i128;
        for &(ss, se) in &self.sync_spans {
            let (ss, se) = (ss.as_nanos(), se.as_nanos());
            if se <= ss {
                continue; // zero-length sync overlaps nothing
            }
            // ends[..a] have ke ≤ ss; ends[a..b] lie in (ss, se).
            let a = ends.partition_point(|&e| e <= ss);
            let b = ends.partition_point(|&e| e < se);
            // starts[..d] have ks ≤ ss; starts[..c] have ks < se.
            let d = starts.partition_point(|&s| s <= ss);
            let c = starts.partition_point(|&s| s < se);
            let sum_min = (pends[b] - pends[a]) as i128 + (n - b) as i128 * se as i128
                - (n - c) as i128 * se as i128;
            let sum_max = (d as i128 - a as i128) * ss as i128 + (pstarts[c] - pstarts[d]) as i128;
            total += sum_min - sum_max;
        }
        SimDuration::from_nanos(total as u64)
    }
}

impl FromIterator<TraceEvent> for Timeline {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        let mut tl = Timeline::new();
        tl.extend(iter);
        tl
    }
}

impl Extend<TraceEvent> for Timeline {
    fn extend<I: IntoIterator<Item = TraceEvent>>(&mut self, iter: I) {
        let iter = iter.into_iter();
        self.events.reserve(iter.size_hint().0);
        for event in iter {
            self.push(event);
        }
    }
}

/// One launch operation's metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchRecord {
    /// Kernel function launched.
    pub kernel: KernelId,
    /// When the driver work began (after any LQT).
    pub start: SimTime,
    /// Kernel launch overhead — the driver-side span.
    pub klo: SimDuration,
    /// Launch queuing time spent blocked before `start`.
    pub lqt: SimDuration,
    /// First launch of this kernel function?
    pub first: bool,
    /// Correlation id to the kernel execution.
    pub correlation: u64,
}

/// One kernel execution's metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelRecord {
    /// Kernel function executed.
    pub kernel: KernelId,
    /// Execution start.
    pub start: SimTime,
    /// Kernel execution time.
    pub ket: SimDuration,
    /// Kernel queuing time (launch end → execution start).
    pub kqt: SimDuration,
    /// Whether the kernel used managed memory.
    pub uvm: bool,
    /// Correlation id back to the launch.
    pub correlation: u64,
}

/// Launch/kernel metric collection for a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaunchMetrics {
    /// Launch records ordered by start time.
    pub launches: Vec<LaunchRecord>,
    /// Kernel records ordered by start time.
    pub kernels: Vec<KernelRecord>,
}

impl LaunchMetrics {
    /// Sum of all KLO spans.
    pub fn total_klo(&self) -> SimDuration {
        self.launches.iter().map(|l| l.klo).sum()
    }

    /// Sum of all LQT waits.
    pub fn total_lqt(&self) -> SimDuration {
        self.launches.iter().map(|l| l.lqt).sum()
    }

    /// Sum of all KET spans.
    pub fn total_ket(&self) -> SimDuration {
        self.kernels.iter().map(|k| k.ket).sum()
    }

    /// Sum of all KQT waits.
    pub fn total_kqt(&self) -> SimDuration {
        self.kernels.iter().map(|k| k.kqt).sum()
    }

    /// All KLO samples (for CDFs).
    pub fn klos(&self) -> Vec<SimDuration> {
        self.launches.iter().map(|l| l.klo).collect()
    }

    /// All KET samples (for CDFs).
    pub fn kets(&self) -> Vec<SimDuration> {
        self.kernels.iter().map(|k| k.ket).collect()
    }

    /// Number of launches.
    pub fn launch_count(&self) -> usize {
        self.launches.len()
    }

    /// Kernel-to-Launch Ratio: `ΣKET / Σ(KLO + LQT)` (Observation 6).
    /// Returns `f64::INFINITY` when there were no launches.
    pub fn klr(&self) -> f64 {
        self.total_ket() / (self.total_klo() + self.total_lqt())
    }

    /// Per-kernel-function statistics: `(kernel, launches, KLO summary,
    /// KET summary)` sorted by kernel id — the grouping behind Fig. 12a's
    /// per-kernel launch trains.
    pub fn by_kernel(
        &self,
    ) -> Vec<(
        KernelId,
        usize,
        Option<crate::Summary>,
        Option<crate::Summary>,
    )> {
        let mut kernels: Vec<KernelId> = self.launches.iter().map(|l| l.kernel).collect();
        kernels.sort_unstable();
        kernels.dedup();
        kernels
            .into_iter()
            .map(|k| {
                let klos: Vec<SimDuration> = self
                    .launches
                    .iter()
                    .filter(|l| l.kernel == k)
                    .map(|l| l.klo)
                    .collect();
                let kets: Vec<SimDuration> = self
                    .kernels
                    .iter()
                    .filter(|r| r.kernel == k)
                    .map(|r| r.ket)
                    .collect();
                (
                    k,
                    klos.len(),
                    crate::Summary::of(&klos),
                    crate::Summary::of(&kets),
                )
            })
            .collect()
    }
}

/// Memory-path metric collection (Fig. 5/6 inputs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemMetrics {
    /// Total host→device copy time.
    pub h2d: SimDuration,
    /// Total device→host copy time.
    pub d2h: SimDuration,
    /// Total device→device copy time (includes CC "managed" demotions).
    pub d2d: SimDuration,
    /// Portion of copy time Nsight would label "Managed".
    pub managed_copy: SimDuration,
    /// Total bytes copied.
    pub copy_bytes: ByteSize,
    /// Total `cudaMalloc` time.
    pub dmalloc: SimDuration,
    /// Total `cudaMallocHost` time.
    pub hmalloc: SimDuration,
    /// Total `cudaMallocManaged` time.
    pub managed_alloc: SimDuration,
    /// Total non-managed free time.
    pub free: SimDuration,
    /// Total managed free time.
    pub managed_free: SimDuration,
    /// Total synchronization time.
    pub sync: SimDuration,
    /// Total CPU crypto time (CC only).
    pub crypto: SimDuration,
    /// Total bytes encrypted/decrypted.
    pub crypto_bytes: ByteSize,
    /// Count of hypercall transitions.
    pub hypercalls: u64,
    /// Total time inside hypercall transitions.
    pub hypercall_time: SimDuration,
    /// Total UVM fault-service time.
    pub uvm_fault: SimDuration,
    /// UVM pages migrated.
    pub uvm_pages: u64,
    /// UVM bytes migrated.
    pub uvm_bytes: ByteSize,
    /// Injected fault attempts (initial failures plus failed retries).
    pub faults_injected: u64,
    /// Recovery retries taken.
    pub fault_retries: u64,
    /// Degrade-to-smaller-chunks recoveries taken.
    pub fault_degrades: u64,
    /// Total recovery time (`T_fault`): the summed spans of
    /// `FaultInjected`, `Retry`, and `Degraded` events. Zero when the
    /// fault plan is empty.
    pub fault_time: SimDuration,
}

impl MemMetrics {
    /// Total explicit copy time across directions (T_mem's main term).
    pub fn copy_total(&self) -> SimDuration {
        self.h2d + self.d2h + self.d2d
    }

    /// Total allocation + deallocation time (T_other's main term).
    pub fn management_total(&self) -> SimDuration {
        self.dmalloc + self.hmalloc + self.managed_alloc + self.free + self.managed_free
    }
}

/// The four phases of the Fig. 3 model as measured from a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Part A: data transfer (`T_mem`).
    pub t_mem: SimDuration,
    /// Part B: `Σ(KLO + LQT)`.
    pub t_launch: SimDuration,
    /// Part C: `Σ(KET + KQT)`.
    pub t_kernel: SimDuration,
    /// Part D: alloc/free/sync (`T_other`).
    pub t_other: SimDuration,
    /// Fault-recovery attribution (`T_fault`): time spent in injected-fault
    /// recovery (backoffs, re-done staging/crypto, degraded setup). This is
    /// an *overlay*, not a fifth serial phase — recovery happens inside the
    /// host spans it interrupts (a retried staging chunk lengthens the
    /// `Memcpy` span that contains it), mirroring how exposed sync overlaps
    /// kernel execution. Zero whenever the fault plan is empty.
    pub t_fault: SimDuration,
    /// Observed end-to-end span `P`.
    pub span: SimDuration,
}

impl PhaseTotals {
    /// Serial (no-overlap) sum of the four phases — the model's `P` when
    /// `α = β = 0`. `T_fault` is excluded: it is attribution *within* the
    /// four phases, not additional serial time.
    pub fn serial_sum(&self) -> SimDuration {
        self.t_mem + self.t_launch + self.t_kernel + self.t_other
    }
}

hcc_types::impl_to_json!(PhaseTotals {
    t_mem,
    t_launch,
    t_kernel,
    t_other,
    t_fault,
    span
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StreamId;
    use hcc_types::HostMemKind;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    fn sample_timeline() -> Timeline {
        let mut tl = Timeline::new();
        // Launch 1: 10–16us (KLO 6us, LQT 2us), kernel 18–118us (KQT 2us).
        tl.push(
            TraceEvent::new(
                EventKind::Launch {
                    kernel: KernelId(0),
                    queue_wait: SimDuration::micros(2),
                    first: true,
                },
                t(10),
                t(16),
            )
            .with_correlation(1),
        );
        tl.push(
            TraceEvent::new(
                EventKind::Kernel {
                    kernel: KernelId(0),
                    uvm: false,
                },
                t(18),
                t(118),
            )
            .with_correlation(1)
            .on_stream(StreamId(0)),
        );
        // A 1 MiB H2D copy, 120–150us.
        tl.push(TraceEvent::new(
            EventKind::Memcpy {
                kind: CopyKind::H2D,
                bytes: ByteSize::mib(1),
                mem: HostMemKind::Pageable,
                managed: false,
            },
            t(120),
            t(150),
        ));
        // Alloc 0–10us; free 150–160us; sync 160–161us.
        tl.push(TraceEvent::new(
            EventKind::Alloc {
                space: MemSpace::Device,
                bytes: ByteSize::mib(1),
            },
            t(0),
            t(10),
        ));
        tl.push(TraceEvent::new(
            EventKind::Free {
                space: MemSpace::Device,
                bytes: ByteSize::mib(1),
            },
            t(150),
            t(160),
        ));
        tl.push(TraceEvent::new(EventKind::Sync, t(160), t(161)));
        tl
    }

    #[test]
    fn span_covers_first_to_last() {
        let tl = sample_timeline();
        assert_eq!(tl.span(), SimDuration::micros(161));
        assert_eq!(tl.end(), t(161));
        assert!(Timeline::new().span().is_zero());
    }

    #[test]
    fn launch_metrics_extraction() {
        let lm = sample_timeline().launch_metrics();
        assert_eq!(lm.launch_count(), 1);
        assert_eq!(lm.launches[0].klo, SimDuration::micros(6));
        assert_eq!(lm.launches[0].lqt, SimDuration::micros(2));
        assert!(lm.launches[0].first);
        assert_eq!(lm.kernels[0].ket, SimDuration::micros(100));
        assert_eq!(lm.kernels[0].kqt, SimDuration::micros(2));
        let klr = lm.klr();
        assert!((klr - 100.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn klr_infinite_without_launches() {
        let mut tl = Timeline::new();
        tl.push(
            TraceEvent::new(
                EventKind::Kernel {
                    kernel: KernelId(1),
                    uvm: false,
                },
                t(0),
                t(5),
            )
            .with_correlation(7),
        );
        let lm = tl.launch_metrics();
        assert_eq!(lm.klr(), f64::INFINITY);
        // Kernel without matching launch gets zero KQT.
        assert_eq!(lm.kernels[0].kqt, SimDuration::ZERO);
    }

    #[test]
    fn mem_metrics_extraction() {
        let mm = sample_timeline().mem_metrics();
        assert_eq!(mm.h2d, SimDuration::micros(30));
        assert_eq!(mm.copy_total(), SimDuration::micros(30));
        assert_eq!(mm.copy_bytes, ByteSize::mib(1));
        assert_eq!(mm.dmalloc, SimDuration::micros(10));
        assert_eq!(mm.free, SimDuration::micros(10));
        assert_eq!(mm.management_total(), SimDuration::micros(20));
        assert_eq!(mm.sync, SimDuration::micros(1));
    }

    #[test]
    fn phase_totals_sum() {
        let pt = sample_timeline().phase_totals();
        assert_eq!(pt.t_mem, SimDuration::micros(30));
        assert_eq!(pt.t_launch, SimDuration::micros(8));
        assert_eq!(pt.t_kernel, SimDuration::micros(102));
        assert_eq!(pt.t_other, SimDuration::micros(21));
        assert_eq!(pt.serial_sum(), SimDuration::micros(161));
    }

    #[test]
    fn records_sorted_by_start_even_if_pushed_out_of_order() {
        let mut tl = Timeline::new();
        tl.push(
            TraceEvent::new(
                EventKind::Launch {
                    kernel: KernelId(2),
                    queue_wait: SimDuration::ZERO,
                    first: false,
                },
                t(50),
                t(55),
            )
            .with_correlation(2),
        );
        tl.push(
            TraceEvent::new(
                EventKind::Launch {
                    kernel: KernelId(1),
                    queue_wait: SimDuration::ZERO,
                    first: true,
                },
                t(10),
                t(15),
            )
            .with_correlation(1),
        );
        let lm = tl.launch_metrics();
        assert_eq!(lm.launches[0].kernel, KernelId(1));
        assert_eq!(lm.launches[1].kernel, KernelId(2));
    }

    #[test]
    fn running_min_max_survive_out_of_order_pushes() {
        // The arena maintains span bounds incrementally; pushing spans in
        // descending, interleaved, and nested orders must always agree
        // with a full scan of the stored events.
        let spans = [(40u64, 45u64), (10, 90), (0, 5), (50, 55), (2, 3)];
        let mut tl = Timeline::new();
        for (i, &(s, e)) in spans.iter().enumerate() {
            tl.push(TraceEvent::new(EventKind::Sync, t(s), t(e)));
            let scan_min = tl.events().iter().map(|e| e.start).min().unwrap();
            let scan_max = tl.events().iter().map(|e| e.end).max().unwrap();
            assert_eq!(tl.end(), scan_max, "after push {i}");
            assert_eq!(tl.span(), scan_max - scan_min, "after push {i}");
        }
        assert_eq!(tl.span(), SimDuration::micros(90));
        assert_eq!(tl.end(), t(90));
    }

    #[test]
    fn collect_and_extend() {
        let tl: Timeline = sample_timeline().events().to_vec().into_iter().collect();
        let mut tl2 = Timeline::new();
        tl2.extend(tl.events().iter().cloned());
        assert_eq!(tl.len(), tl2.len());
        assert!(!tl.is_empty());
    }
}
