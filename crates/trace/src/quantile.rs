//! The one nearest-rank quantile used everywhere in the trace crate.
//!
//! [`crate::rollup::quantile_sorted`], [`crate::Cdf::quantile`], and
//! [`crate::Histogram::quantile`] historically carried three copies of
//! the same integer rank formula; they now all delegate here so the
//! rank math can never drift between the rollup, CDF, and histogram
//! views of the same latency population.

use hcc_types::SimDuration;

/// Zero-based index of the nearest-rank `p`-quantile in an
/// ascending-sorted population of `len` samples, or `None` when the
/// population is empty.
///
/// `p` is clamped to `[0, 1]`; the rank is `ceil(p * len)` clamped to
/// `[1, len]`, so `p = 0` selects the minimum and `p = 1` the maximum.
/// Integer rank math, no interpolation — quantiles are always a member
/// of the population, which keeps every tail figure bit-stable.
pub fn nearest_rank_index(len: usize, p: f64) -> Option<usize> {
    if len == 0 {
        return None;
    }
    let p = p.clamp(0.0, 1.0);
    let rank = ((p * len as f64).ceil() as usize).clamp(1, len);
    Some(rank - 1)
}

/// Nearest-rank `p`-quantile over an ascending-sorted duration slice;
/// `SimDuration::ZERO` when empty (no latency to report is data, not an
/// error).
pub fn nearest_rank(sorted: &[SimDuration], p: f64) -> SimDuration {
    nearest_rank_index(sorted.len(), p)
        .map(|i| sorted[i])
        .unwrap_or(SimDuration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_population_has_no_rank() {
        assert_eq!(nearest_rank_index(0, 0.5), None);
        assert_eq!(nearest_rank(&[], 0.999), SimDuration::ZERO);
    }

    #[test]
    fn rank_formula_matches_nearest_rank_definition() {
        // 4 samples: p=0.25 is the 1st, p=0.5 the 2nd, p=1.0 the 4th.
        assert_eq!(nearest_rank_index(4, 0.0), Some(0));
        assert_eq!(nearest_rank_index(4, 0.25), Some(0));
        assert_eq!(nearest_rank_index(4, 0.5), Some(1));
        assert_eq!(nearest_rank_index(4, 0.75), Some(2));
        assert_eq!(nearest_rank_index(4, 1.0), Some(3));
        // 1000 samples: p99 is rank 990, p999 rank 999.
        assert_eq!(nearest_rank_index(1000, 0.99), Some(989));
        assert_eq!(nearest_rank_index(1000, 0.999), Some(998));
    }

    #[test]
    fn out_of_range_p_clamps() {
        assert_eq!(nearest_rank_index(10, -3.0), Some(0));
        assert_eq!(nearest_rank_index(10, 7.5), Some(9));
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let one = [SimDuration::millis(7)];
        for p in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(nearest_rank(&one, p), SimDuration::millis(7), "p={p}");
        }
    }

    #[test]
    fn two_samples_split_at_the_median() {
        let two = [SimDuration::micros(1), SimDuration::micros(9)];
        assert_eq!(nearest_rank(&two, 0.5), SimDuration::micros(1));
        assert_eq!(nearest_rank(&two, 0.51), SimDuration::micros(9));
        assert_eq!(nearest_rank(&two, 0.999), SimDuration::micros(9));
    }
}
