//! Streaming virtual-time rollups: tumbling/sliding windows over request
//! completions and gauge change-point series.
//!
//! The metrics plane ([`crate::metrics`]) answers whole-run questions
//! (peak depth, total occupancy); this module slices the same virtual
//! clock into windows so a 30-day soak becomes a time-resolved sequence
//! of per-window tail latencies, throughputs, and rejection fractions —
//! the substrate the `hcc_bench::watch` burn-rate alerter consumes.
//!
//! Determinism contract (shared with the metrics plane):
//!
//! - **Virtual-time only.** A [`CompletionSample`] carries the settle
//!   instant on the sim clock; window boundaries are pure arithmetic on
//!   it. No wall-clock read anywhere.
//! - **Order-independence.** Samples may be recorded in any order (the
//!   serving loop settles completions as it dispatches, not as they
//!   finish); [`RollupCollector::into_sorted`] canonicalizes by
//!   `(at, req)` so every rollup depends only on the *set* of samples.
//! - **Zero-cost when disabled.** A disabled collector's `record` is a
//!   single branch and never allocates, so runs with the plane off are
//!   byte-identical to runs before the plane existed.

use hcc_types::{SimDuration, SimTime};

/// One settled request: either a completion (with its end-to-end
/// latency) or an admission-control rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionSample {
    /// Index of the request in the driving soak's arrival order.
    pub req: u32,
    /// Tenant index (into the soak's tenant table).
    pub tenant: u32,
    /// Virtual instant the request settled (completion or rejection).
    pub at: SimTime,
    /// End-to-end latency (arrival → completion); zero for rejections.
    pub latency: SimDuration,
    /// True when admission control turned the request away.
    pub rejected: bool,
}

/// Append-only recorder for [`CompletionSample`]s. Disabled by default;
/// the serving loop threads one through unconditionally and pays a
/// single branch per settled request when the plane is off.
#[derive(Debug, Clone, Default)]
pub struct RollupCollector {
    enabled: bool,
    samples: Vec<CompletionSample>,
}

impl RollupCollector {
    /// A disabled (no-op) collector — the default state.
    pub fn new() -> Self {
        RollupCollector::default()
    }

    /// An enabled collector with no samples.
    pub fn enabled() -> Self {
        RollupCollector {
            enabled: true,
            samples: Vec::new(),
        }
    }

    /// Whether this collector records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one settled request (no-op while disabled).
    pub fn record(&mut self, sample: CompletionSample) {
        if self.enabled {
            self.samples.push(sample);
        }
    }

    /// Number of samples recorded so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Consumes the collector and returns samples in canonical
    /// `(at, req)` order — the form every rollup function expects, and
    /// the reason recording order (thread interleaving, dispatch order)
    /// can never leak into a report.
    pub fn into_sorted(mut self) -> Vec<CompletionSample> {
        self.samples.sort_by_key(|s| (s.at, s.req));
        self.samples
    }
}

/// One half-open rollup window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Position in the generating sequence.
    pub index: usize,
    /// Inclusive start.
    pub start: SimTime,
    /// Exclusive end.
    pub end: SimTime,
}

impl Window {
    /// Window width.
    pub fn width(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// Midpoint instant (used to correlate a window against a storm
    /// calendar).
    pub fn mid(&self) -> SimTime {
        SimTime::from_nanos((self.start.as_nanos() + self.end.as_nanos()) / 2)
    }

    /// Whether `t` falls inside `[start, end)`.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// Non-overlapping windows of `width` tiling `[0, horizon)`; the last
/// window is clipped short only if the horizon is not a multiple of the
/// width — boundaries are exact integer arithmetic, never floats. A zero
/// width or zero horizon yields no windows.
pub fn tumbling(horizon: SimTime, width: SimDuration) -> Vec<Window> {
    sliding(horizon, width, width)
}

/// Overlapping windows of `width` whose starts advance by `stride`,
/// covering `[0, horizon)`. Windows are clipped to the horizon. Zero
/// stride, zero width, or a zero horizon yields no windows.
pub fn sliding(horizon: SimTime, width: SimDuration, stride: SimDuration) -> Vec<Window> {
    let horizon_ns = horizon.as_nanos();
    let (width_ns, stride_ns) = (width.as_nanos(), stride.as_nanos());
    if horizon_ns == 0 || width_ns == 0 || stride_ns == 0 {
        return Vec::new();
    }
    let mut windows = Vec::new();
    let mut start = 0u64;
    while start < horizon_ns {
        let end = start.saturating_add(width_ns).min(horizon_ns);
        windows.push(Window {
            index: windows.len(),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
        });
        start = start.saturating_add(stride_ns);
    }
    windows
}

/// The contiguous slice of `samples` (sorted by `at`) settling inside
/// `window` — the primitive per-tenant consumers filter further.
pub fn window_range<'a>(
    samples: &'a [CompletionSample],
    window: &Window,
) -> &'a [CompletionSample] {
    let lo = samples.partition_point(|s| s.at < window.start);
    let hi = samples.partition_point(|s| s.at < window.end);
    &samples[lo..hi]
}

/// Nearest-rank `p`-quantile over an ascending-sorted latency slice
/// (`SimDuration::ZERO` when empty) — integer rank math, no
/// interpolation, so rollup tails are bit-stable. Thin alias for
/// [`crate::quantile::nearest_rank`], the shared rank formula.
pub fn quantile_sorted(sorted: &[SimDuration], p: f64) -> SimDuration {
    crate::quantile::nearest_rank(sorted, p)
}

/// Per-window rollup of settled requests: counts, tail latencies, and
/// throughput for one [`Window`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowStats {
    /// The window these figures cover.
    pub window: Window,
    /// Requests that completed inside the window.
    pub completed: u64,
    /// Requests rejected inside the window.
    pub rejected: u64,
    /// Nearest-rank completion-latency quantiles (ZERO when nothing
    /// completed in the window).
    pub p50: SimDuration,
    /// 99th-percentile completion latency.
    pub p99: SimDuration,
    /// 99.9th-percentile completion latency.
    pub p999: SimDuration,
    /// Sum of completion latencies (for exact window means).
    pub latency_sum: SimDuration,
}

impl WindowStats {
    /// Completed plus rejected.
    pub fn total(&self) -> u64 {
        self.completed + self.rejected
    }

    /// Rejected fraction of everything that settled, in parts per
    /// million (0 for an empty window).
    pub fn reject_ppm(&self) -> u64 {
        if self.total() == 0 {
            0
        } else {
            self.rejected * 1_000_000 / self.total()
        }
    }

    /// Completions per virtual second over the window width.
    pub fn throughput_per_sec(&self) -> f64 {
        let w = self.window.width().as_secs_f64();
        if w <= 0.0 {
            0.0
        } else {
            self.completed as f64 / w
        }
    }
}

/// Rolls `samples` (canonically sorted — see
/// [`RollupCollector::into_sorted`]) into one [`WindowStats`] per
/// window.
pub fn window_stats(samples: &[CompletionSample], windows: &[Window]) -> Vec<WindowStats> {
    windows
        .iter()
        .map(|w| {
            let slice = window_range(samples, w);
            let mut latencies: Vec<SimDuration> = slice
                .iter()
                .filter(|s| !s.rejected)
                .map(|s| s.latency)
                .collect();
            latencies.sort_unstable();
            let rejected = slice.len() as u64 - latencies.len() as u64;
            let mut latency_sum = SimDuration::ZERO;
            for l in &latencies {
                latency_sum += *l;
            }
            WindowStats {
                window: *w,
                completed: latencies.len() as u64,
                rejected,
                p50: quantile_sorted(&latencies, 0.50),
                p99: quantile_sorted(&latencies, 0.99),
                p999: quantile_sorted(&latencies, 0.999),
                latency_sum,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(SimDuration::millis(ms).as_nanos())
    }

    fn sample(req: u32, at_ms: u64, lat_ms: u64, rejected: bool) -> CompletionSample {
        CompletionSample {
            req,
            tenant: req % 2,
            at: t(at_ms),
            latency: SimDuration::millis(lat_ms),
            rejected,
        }
    }

    #[test]
    fn disabled_collector_is_a_no_op() {
        let mut c = RollupCollector::new();
        assert!(!c.is_enabled());
        c.record(sample(0, 1, 1, false));
        assert!(c.is_empty());
        assert!(c.into_sorted().is_empty());
    }

    #[test]
    fn collector_canonicalizes_recording_order() {
        let mut fwd = RollupCollector::enabled();
        let mut rev = RollupCollector::enabled();
        let samples = [
            sample(0, 30, 3, false),
            sample(1, 10, 1, false),
            sample(2, 10, 2, true),
        ];
        for s in &samples {
            fwd.record(*s);
        }
        for s in samples.iter().rev() {
            rev.record(*s);
        }
        let canon = fwd.into_sorted();
        assert_eq!(canon, rev.into_sorted());
        assert_eq!(canon[0].req, 1, "ties broken by request index");
        assert_eq!(canon[1].req, 2);
    }

    #[test]
    fn tumbling_tiles_horizon_exactly() {
        let ws = tumbling(t(95), SimDuration::millis(10));
        assert_eq!(ws.len(), 10);
        assert_eq!(ws[0].start, SimTime::ZERO);
        for pair in ws.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "gap or overlap");
        }
        assert_eq!(ws[9].end, t(95), "last window clipped to horizon");
        assert_eq!(ws[9].width(), SimDuration::millis(5));
        assert!(ws[3].contains(t(35)));
        assert!(!ws[3].contains(t(40)));
        assert_eq!(ws[3].mid(), t(35));
    }

    #[test]
    fn sliding_windows_overlap_by_stride() {
        let ws = sliding(t(30), SimDuration::millis(10), SimDuration::millis(5));
        assert_eq!(ws.len(), 6);
        assert_eq!(ws[1].start, t(5));
        assert_eq!(ws[1].end, t(15));
        assert_eq!(ws[5].start, t(25));
        assert_eq!(ws[5].end, t(30));
    }

    #[test]
    fn degenerate_window_generation_is_empty() {
        assert!(tumbling(SimTime::ZERO, SimDuration::millis(10)).is_empty());
        assert!(tumbling(t(10), SimDuration::ZERO).is_empty());
        assert!(sliding(t(10), SimDuration::millis(5), SimDuration::ZERO).is_empty());
    }

    #[test]
    fn window_stats_count_and_rank_correctly() {
        let mut c = RollupCollector::enabled();
        // Window [0,10): three completions 1/2/100ms, one rejection.
        c.record(sample(0, 1, 1, false));
        c.record(sample(1, 2, 2, false));
        c.record(sample(2, 3, 100, false));
        c.record(sample(3, 4, 0, true));
        // Window [10,20): empty. Window [20,30): one rejection only.
        c.record(sample(4, 25, 0, true));
        let samples = c.into_sorted();
        let ws = tumbling(t(30), SimDuration::millis(10));
        let stats = window_stats(&samples, &ws);
        assert_eq!(stats.len(), 3);

        assert_eq!(stats[0].completed, 3);
        assert_eq!(stats[0].rejected, 1);
        assert_eq!(stats[0].total(), 4);
        assert_eq!(stats[0].reject_ppm(), 250_000);
        assert_eq!(stats[0].p50, SimDuration::millis(2));
        assert_eq!(stats[0].p99, SimDuration::millis(100));
        assert_eq!(stats[0].p999, SimDuration::millis(100));
        assert_eq!(stats[0].latency_sum, SimDuration::millis(103));
        assert!((stats[0].throughput_per_sec() - 300.0).abs() < 1e-9);

        assert_eq!(stats[1].total(), 0);
        assert_eq!(stats[1].p999, SimDuration::ZERO);
        assert_eq!(stats[1].reject_ppm(), 0);

        assert_eq!(stats[2].completed, 0);
        assert_eq!(stats[2].rejected, 1);
        assert_eq!(stats[2].reject_ppm(), 1_000_000);
    }

    #[test]
    fn window_range_is_half_open() {
        let samples = vec![
            sample(0, 9, 1, false),
            sample(1, 10, 1, false),
            sample(2, 19, 1, false),
            sample(3, 20, 1, false),
        ];
        let w = Window {
            index: 1,
            start: t(10),
            end: t(20),
        };
        let slice = window_range(&samples, &w);
        assert_eq!(slice.len(), 2);
        assert_eq!(slice[0].req, 1);
        assert_eq!(slice[1].req, 2);
    }

    #[test]
    fn quantile_sorted_degenerate_inputs() {
        assert_eq!(quantile_sorted(&[], 0.99), SimDuration::ZERO);
        let one = [SimDuration::millis(7)];
        for p in [0.0, 0.5, 0.999] {
            assert_eq!(quantile_sorted(&one, p), SimDuration::millis(7));
        }
    }
}
