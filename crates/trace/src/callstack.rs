//! Flame-graph-style call-stack cost trees — the structure behind Fig. 8's
//! `cudaLaunchKernel` breakdown inside a TD.

use hcc_types::SimDuration;

/// One frame in a cost-annotated call tree.
///
/// `cost` is the *self* cost of this frame; [`CallFrame::total`] adds the
/// children. Rendering produces an indented, per-line breakdown similar to
/// a collapsed flame graph.
///
/// ```
/// use hcc_trace::CallFrame;
/// use hcc_types::SimDuration;
///
/// let mut root = CallFrame::new("cudaLaunchKernel", SimDuration::micros(2));
/// root.push_child(CallFrame::new("ioctl", SimDuration::micros(1)));
/// assert_eq!(root.total(), SimDuration::micros(3));
/// assert!(root.render().contains("ioctl"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallFrame {
    name: String,
    cost: SimDuration,
    children: Vec<CallFrame>,
    critical: bool,
}

impl CallFrame {
    /// Creates a leaf frame with a self cost.
    pub fn new(name: impl Into<String>, cost: SimDuration) -> Self {
        CallFrame {
            name: name.into(),
            cost,
            children: Vec::new(),
            critical: false,
        }
    }

    /// Frame name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Self cost (excluding children).
    pub fn self_cost(&self) -> SimDuration {
        self.cost
    }

    /// Child frames.
    pub fn children(&self) -> &[CallFrame] {
        &self.children
    }

    /// Mutable child frames, for post-construction annotation passes.
    pub fn children_mut(&mut self) -> &mut [CallFrame] {
        &mut self.children
    }

    /// Whether this frame has been marked as lying on the critical path.
    pub fn is_critical(&self) -> bool {
        self.critical
    }

    /// Marks this frame as lying on the critical path; [`CallFrame::render`]
    /// flags marked frames with a trailing `*`.
    pub fn mark_critical(&mut self) -> &mut Self {
        self.critical = true;
        self
    }

    /// Frames marked critical, including self (depth-first order).
    pub fn critical_frames(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_critical(&mut out);
        out
    }

    fn collect_critical<'a>(&'a self, out: &mut Vec<&'a str>) {
        if self.critical {
            out.push(&self.name);
        }
        for child in &self.children {
            child.collect_critical(out);
        }
    }

    /// Adds a child frame.
    pub fn push_child(&mut self, child: CallFrame) -> &mut Self {
        self.children.push(child);
        self
    }

    /// Builder-style child addition.
    pub fn with_child(mut self, child: CallFrame) -> Self {
        self.children.push(child);
        self
    }

    /// Total cost: self plus all descendants.
    pub fn total(&self) -> SimDuration {
        self.cost + self.children.iter().map(CallFrame::total).sum()
    }

    /// Number of frames in the tree (including self).
    pub fn frame_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(CallFrame::frame_count)
            .sum::<usize>()
    }

    /// Finds the first frame with `name` via depth-first search.
    pub fn find(&self, name: &str) -> Option<&CallFrame> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Renders the tree as indented text with total costs per frame.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let indent = "  ".repeat(depth);
        let mark = if self.critical { " *" } else { "" };
        let _ = writeln!(out, "{indent}{} [{}]{mark}", self.name, self.total());
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::micros(v)
    }

    fn sample() -> CallFrame {
        CallFrame::new("cudaLaunchKernel", us(2)).with_child(
            CallFrame::new("ioctl", us(1)).with_child(
                CallFrame::new("nvidia_ioctl", us(1))
                    .with_child(CallFrame::new("dma_direct_alloc", us(3)))
                    .with_child(CallFrame::new("set_memory_decrypted", us(4)))
                    .with_child(CallFrame::new("tdx_hypercall", us(5))),
            ),
        )
    }

    #[test]
    fn totals_roll_up() {
        let root = sample();
        assert_eq!(root.total(), us(16));
        assert_eq!(root.frame_count(), 6);
        assert_eq!(root.self_cost(), us(2));
    }

    #[test]
    fn find_locates_deep_frames() {
        let root = sample();
        let hc = root.find("tdx_hypercall").expect("frame exists");
        assert_eq!(hc.total(), us(5));
        assert!(root.find("missing").is_none());
    }

    #[test]
    fn render_is_indented_and_complete() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with("cudaLaunchKernel"));
        assert!(lines[1].starts_with("  ioctl"));
        assert!(lines[3].contains("dma_direct_alloc"));
        // Deeper frames indent more.
        let depth = |l: &str| l.chars().take_while(|c| *c == ' ').count();
        assert!(depth(lines[3]) > depth(lines[1]));
    }

    #[test]
    fn critical_marks_annotate_render_without_perturbing_costs() {
        let mut root = sample();
        assert!(root.critical_frames().is_empty());
        let unmarked = root.render();
        assert!(!unmarked.contains('*'));

        root.mark_critical();
        for child in root.children_mut() {
            if child.name() == "ioctl" {
                child.mark_critical();
            }
        }
        assert!(root.is_critical());
        assert_eq!(root.critical_frames(), vec!["cudaLaunchKernel", "ioctl"]);
        assert_eq!(root.total(), us(16), "marking never changes costs");

        let marked = root.render();
        let lines: Vec<&str> = marked.lines().collect();
        assert!(lines[0].ends_with('*'));
        assert!(lines[1].ends_with('*'));
        assert!(!lines[2].ends_with('*'));
        // Stripping the marks recovers the unmarked render exactly.
        assert_eq!(marked.replace(" *\n", "\n"), unmarked);
    }
}
