//! Request flight recorder: typed per-request span trees with
//! tail-exemplar sampling for million-request soaks.
//!
//! The rollup plane ([`crate::rollup`]) can say *which window* went bad
//! and the critical path ([`crate::critpath`]) *which resource class* a
//! shape spends its time on; this module answers the question an
//! operator actually asks — *which request was slow, and where inside
//! it did the virtual time go*. Each sampled request carries an ordered
//! span tree (queue wait → SPDM handshake → doorbell pair → per-phase
//! service decomposition → batch margin) under the same enforced
//! identity as the critical path: **child spans partition
//! `settle − arrival` exactly**, integer nanoseconds, no gaps, no
//! overlaps ([`FlightSample::identity_holds`]).
//!
//! Storing 10⁵–10⁶ full trees is unaffordable, so recording is a
//! per-tumbling-window exemplar sampler with a hard memory bound:
//! every window keeps its `worst` tail requests (latency descending,
//! request index as the unique tie-break) plus a `reservoir`-sized
//! seeded uniform sample (the requests with the smallest
//! `mix(seed, window, req)` — a bottom-k sketch, which is exactly a
//! uniform sample that needs no insertion-order state). Both keeps are
//! "extreme k under a total order with a unique tie-break", so the
//! sampler is insertion-order independent and therefore byte-identical
//! at any `HCC_ENGINE_THREADS`.
//!
//! Determinism contract (shared with the metrics and rollup planes):
//! virtual-time only, order-independent, and zero-cost when disabled —
//! a disabled recorder's `record` is a single branch and never
//! allocates. Enablement is gated through the existing
//! [`Planes`] mask via [`FlightRecorder::for_planes`]
//! ([`Planes::FLIGHT`]).

use std::collections::BTreeMap;

use hcc_types::json::{Json, ToJson};
use hcc_types::{FaultCounts, Planes, SimDuration, SimTime};

use crate::critpath::{Attribution, ResourceClass};

/// Sampler tuning: tumbling-window width and per-window keep counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightConfig {
    /// Tumbling-window width (requests are windowed by settle instant).
    pub window: SimDuration,
    /// Tail exemplars kept per window (the window's worst latencies).
    pub worst: usize,
    /// Seeded-reservoir uniform exemplars kept per window.
    pub reservoir: usize,
    /// Seed of the reservoir's bottom-k hash.
    pub seed: u64,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            window: SimDuration::secs(5),
            worst: 4,
            reservoir: 4,
            seed: 0xF11A_2026,
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

impl FlightConfig {
    /// Applies `HCC_FLIGHT_WINDOW_MS`, `HCC_FLIGHT_WORST`,
    /// `HCC_FLIGHT_RESERVOIR`, and `HCC_FLIGHT_SEED` overrides.
    #[must_use]
    pub fn from_env(mut self) -> Self {
        if let Some(ms) = env_u64("HCC_FLIGHT_WINDOW_MS") {
            self.window = SimDuration::millis(ms.max(1));
        }
        if let Some(k) = env_u64("HCC_FLIGHT_WORST") {
            self.worst = k.min(1024) as usize;
        }
        if let Some(r) = env_u64("HCC_FLIGHT_RESERVOIR") {
            self.reservoir = r.min(1024) as usize;
        }
        if let Some(s) = env_u64("HCC_FLIGHT_SEED") {
            self.seed = s;
        }
        self
    }

    /// Hard per-window entry bound the sampler may never exceed (the
    /// figure `LeakAudit` checks against a full soak).
    pub fn per_window_budget(&self) -> u64 {
        (self.worst + self.reservoir) as u64
    }
}

/// splitmix64-style finalizer over `(seed, window, req)` — the
/// reservoir's total order. Identical triples hash identically on every
/// thread count, which is the whole sampling contract.
fn mix(seed: u64, window: u64, req: u32) -> u64 {
    let mut z = seed
        ^ window.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (u64::from(req) | 1 << 63).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The compact per-request record the cluster loop emits while
/// simulating — everything needed to rebuild the span tree later except
/// the service-shape decomposition, which is resolved once per distinct
/// shape (not per request) by [`FlightRecorder::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightSkeleton {
    /// Index of the request in the driving soak's arrival order.
    pub req: u32,
    /// Tenant index (into the soak's tenant table).
    pub tenant: u32,
    /// GPU the request was served on (0 for rejections).
    pub gpu: u32,
    /// Size of the batch the request was served in (0 for rejections).
    pub batch: u32,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Dispatch instant (equals `settle` for rejections).
    pub dispatch: SimTime,
    /// Settle instant (completion or rejection).
    pub settle: SimTime,
    /// This request's own SPDM session-establishment time (zero on
    /// session reuse).
    pub spdm: SimDuration,
    /// This request's own doorbell hypercall pair (submit + complete).
    pub doorbell: SimDuration,
    /// Whether admission was a cold start.
    pub cold: bool,
    /// Whether admission control turned the request away.
    pub rejected: bool,
}

impl FlightSkeleton {
    /// End-to-end latency (arrival → settle).
    pub fn latency(&self) -> SimDuration {
        self.settle.saturating_since(self.arrival)
    }
}

/// One window's keeps: the tail exemplars and the uniform reservoir.
/// Both vectors are maintained sorted under their total order and
/// truncated to the configured bound, so contents depend only on the
/// *set* of records, never their order.
#[derive(Debug, Clone, Default)]
struct WindowSampler {
    /// `(latency desc, req asc)`, at most `cfg.worst` entries.
    worst: Vec<FlightSkeleton>,
    /// `(mix hash asc, req asc)`, at most `cfg.reservoir` entries.
    pool: Vec<(u64, FlightSkeleton)>,
}

impl WindowSampler {
    fn insert(&mut self, s: FlightSkeleton, window: u64, cfg: &FlightConfig) {
        if cfg.worst > 0 {
            let key = (std::cmp::Reverse(s.latency()), s.req);
            let pos = self
                .worst
                .partition_point(|o| (std::cmp::Reverse(o.latency()), o.req) < key);
            if pos < cfg.worst {
                self.worst.insert(pos, s);
                self.worst.truncate(cfg.worst);
            }
        }
        if cfg.reservoir > 0 {
            let h = mix(cfg.seed, window, s.req);
            let key = (h, s.req);
            let pos = self.pool.partition_point(|&(oh, ref o)| (oh, o.req) < key);
            if pos < cfg.reservoir {
                self.pool.insert(pos, (h, s));
                self.pool.truncate(cfg.reservoir);
            }
        }
    }

    fn entries(&self) -> u64 {
        (self.worst.len() + self.pool.len()) as u64
    }
}

/// Thread-invariant per-request recorder. Disabled by default; the
/// cluster loop threads one through unconditionally and pays a single
/// branch per settled request when the plane is off.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    enabled: bool,
    cfg: FlightConfig,
    windows: BTreeMap<u64, WindowSampler>,
    recorded: u64,
}

impl FlightRecorder {
    /// A disabled (no-op) recorder — the default state.
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// An enabled recorder with no samples.
    pub fn enabled(cfg: FlightConfig) -> Self {
        FlightRecorder {
            enabled: true,
            cfg,
            windows: BTreeMap::new(),
            recorded: 0,
        }
    }

    /// Gates enablement through the [`Planes`] mask: enabled only when
    /// `planes` contains [`Planes::FLIGHT`].
    pub fn for_planes(planes: Planes, cfg: FlightConfig) -> Self {
        if planes.contains(Planes::FLIGHT) {
            FlightRecorder::enabled(cfg)
        } else {
            FlightRecorder::new()
        }
    }

    /// Whether this recorder records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one settled request (no-op while disabled).
    pub fn record(&mut self, s: FlightSkeleton) {
        if !self.enabled {
            return;
        }
        self.recorded += 1;
        let w = s.settle.as_nanos() / self.cfg.window.as_nanos().max(1);
        let cfg = self.cfg;
        self.windows.entry(w).or_default().insert(s, w, &cfg);
    }

    /// Total requests seen (kept or not).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Distinct windows holding at least one exemplar.
    pub fn window_count(&self) -> u64 {
        self.windows.len() as u64
    }

    /// Total kept sampler entries across all windows (before the
    /// worst∩reservoir dedup that `resolve` performs) — the figure the
    /// `kept ≤ windows × budget` memory bound is checked against.
    pub fn kept_entries(&self) -> u64 {
        self.windows.values().map(WindowSampler::entries).sum()
    }

    /// Resolves the kept skeletons into full span trees. `shape_of`
    /// maps a request index to its service-shape slot and `shapes`
    /// carries one decomposition per slot; requests the tables cannot
    /// resolve get an undecomposed service span (identity still holds).
    pub fn resolve(self, shape_of: &[u32], shapes: &[ShapeDecomp]) -> FlightLog {
        let mut samples: Vec<FlightSample> = Vec::new();
        let windows = self.windows.len() as u64;
        let mut kept_entries = 0u64;
        for (&w, sampler) in &self.windows {
            kept_entries += sampler.entries();
            let mut members: Vec<(FlightSkeleton, bool, bool)> =
                sampler.worst.iter().map(|&s| (s, true, false)).collect();
            for &(_, s) in &sampler.pool {
                if let Some(m) = members.iter_mut().find(|m| m.0.req == s.req) {
                    m.2 = true;
                } else {
                    members.push((s, false, true));
                }
            }
            members.sort_by_key(|m| m.0.req);
            for (skel, tail, uniform) in members {
                let decomp = shape_of
                    .get(skel.req as usize)
                    .and_then(|&si| shapes.get(si as usize))
                    .copied()
                    .unwrap_or_default();
                samples.push(FlightSample::build(skel, w, tail, uniform, &decomp));
            }
        }
        FlightLog {
            cfg: self.cfg,
            recorded: self.recorded,
            windows,
            kept_entries,
            samples,
        }
    }
}

/// Per-shape service decomposition: how one distinct service shape's
/// virtual time splits across resource classes (from the shape's
/// critical path) plus its recovery counters. Built once per shape, not
/// per request.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShapeDecomp {
    /// The shape's total service duration (what the cluster charged).
    pub total: SimDuration,
    /// Critical-path attribution of the shape's trace.
    pub attr: Attribution,
    /// Fault-recovery counters of the shape's trace.
    pub faults: FaultCounts,
}

/// The type of one span in a request's tree, in waterfall order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Arrival → dispatch (scheduler queue).
    QueueWait,
    /// SPDM session establishment (cold admissions only).
    SpdmHandshake,
    /// Doorbell hypercall pair (submit + complete), every admission.
    Doorbell,
    /// Service time attributed to one resource class by the shape's
    /// critical path (crypto staging, bounce reserve, copies, kernel,
    /// hypercalls, UVM, host driver).
    Service(ResourceClass),
    /// Service time the shape's critical path does not cover (or the
    /// whole service span when no decomposition is available).
    ServiceOther,
    /// Batch formation: co-batched members' admissions plus the batch
    /// service margin.
    BatchMargin,
}

impl SpanKind {
    /// Stable snake_case name (render rows, JSON).
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::QueueWait => "queue_wait",
            SpanKind::SpdmHandshake => "spdm_handshake",
            SpanKind::Doorbell => "doorbell",
            SpanKind::Service(ResourceClass::HostDriver) => "svc_host_driver",
            SpanKind::Service(ResourceClass::Crypto) => "svc_crypto",
            SpanKind::Service(ResourceClass::BouncePool) => "svc_bounce_pool",
            SpanKind::Service(ResourceClass::RingCp) => "svc_ring_cp",
            SpanKind::Service(ResourceClass::CopyEngine) => "svc_copy_engine",
            SpanKind::Service(ResourceClass::ComputeEngine) => "svc_compute",
            SpanKind::Service(ResourceClass::Uvm) => "svc_uvm",
            SpanKind::ServiceOther => "svc_other",
            SpanKind::BatchMargin => "batch_margin",
        }
    }
}

impl ToJson for SpanKind {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

/// One resolved exemplar: the skeleton plus its ordered span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightSample {
    /// The compact record the cluster loop emitted.
    pub skeleton: FlightSkeleton,
    /// Tumbling-window ordinal (settle ns / window width).
    pub window: u64,
    /// Kept as one of the window's tail exemplars.
    pub tail: bool,
    /// Kept by the window's uniform reservoir.
    pub uniform: bool,
    /// Ordered spans; their durations sum to `settle − arrival` exactly.
    pub spans: Vec<(SpanKind, SimDuration)>,
    /// Recovery counters of the request's service shape.
    pub faults: FaultCounts,
}

impl FlightSample {
    fn build(
        skel: FlightSkeleton,
        window: u64,
        tail: bool,
        uniform: bool,
        decomp: &ShapeDecomp,
    ) -> FlightSample {
        let mut spans: Vec<(SpanKind, SimDuration)> = Vec::new();
        if skel.rejected {
            spans.push((
                SpanKind::QueueWait,
                skel.settle.saturating_since(skel.arrival),
            ));
        } else {
            spans.push((
                SpanKind::QueueWait,
                skel.dispatch.saturating_since(skel.arrival),
            ));
            spans.push((SpanKind::SpdmHandshake, skel.spdm));
            spans.push((SpanKind::Doorbell, skel.doorbell));
            let shape = decomp.total;
            let attr_total = decomp.attr.total();
            if !attr_total.is_zero() && attr_total <= shape {
                for (r, t) in decomp.attr.iter() {
                    if !t.is_zero() {
                        spans.push((SpanKind::Service(r), t));
                    }
                }
                let other = shape - attr_total;
                if !other.is_zero() {
                    spans.push((SpanKind::ServiceOther, other));
                }
            } else {
                spans.push((SpanKind::ServiceOther, shape));
            }
            let service = skel.settle.saturating_since(skel.dispatch);
            let margin = service.saturating_sub(skel.spdm + skel.doorbell + shape);
            spans.push((SpanKind::BatchMargin, margin));
        }
        FlightSample {
            skeleton: skel,
            window,
            tail,
            uniform,
            spans,
            faults: decomp.faults,
        }
    }

    /// Request index shorthand.
    pub fn req(&self) -> u32 {
        self.skeleton.req
    }

    /// End-to-end latency shorthand.
    pub fn latency(&self) -> SimDuration {
        self.skeleton.latency()
    }

    /// Total duration of spans of `kind` (zero when absent).
    pub fn span_duration(&self, kind: SpanKind) -> SimDuration {
        self.spans
            .iter()
            .filter(|&&(k, _)| k == kind)
            .map(|&(_, d)| d)
            .sum()
    }

    /// The enforced per-request identity: spans partition
    /// `settle − arrival` exactly.
    pub fn identity_holds(&self) -> bool {
        let sum: SimDuration = self.spans.iter().map(|&(_, d)| d).sum();
        self.skeleton.arrival <= self.skeleton.settle
            && self.skeleton.dispatch <= self.skeleton.settle
            && sum == self.skeleton.settle - self.skeleton.arrival
    }
}

impl ToJson for FlightSample {
    fn to_json(&self) -> Json {
        let s = &self.skeleton;
        Json::Obj(vec![
            ("req".to_string(), Json::U64(u64::from(s.req))),
            ("tenant".to_string(), Json::U64(u64::from(s.tenant))),
            ("gpu".to_string(), Json::U64(u64::from(s.gpu))),
            ("batch".to_string(), Json::U64(u64::from(s.batch))),
            ("window".to_string(), Json::U64(self.window)),
            ("tail".to_string(), Json::Bool(self.tail)),
            ("uniform".to_string(), Json::Bool(self.uniform)),
            ("cold".to_string(), Json::Bool(s.cold)),
            ("rejected".to_string(), Json::Bool(s.rejected)),
            ("arrival_ns".to_string(), Json::U64(s.arrival.as_nanos())),
            ("settle_ns".to_string(), Json::U64(s.settle.as_nanos())),
            (
                "latency_ns".to_string(),
                Json::U64(self.latency().as_nanos()),
            ),
            (
                "spans".to_string(),
                Json::Arr(
                    self.spans
                        .iter()
                        .map(|&(k, d)| {
                            Json::Obj(vec![
                                ("kind".to_string(), k.to_json()),
                                ("ns".to_string(), Json::U64(d.as_nanos())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The resolved flight log of one soak: every kept exemplar in
/// canonical `(window, req)` order plus the sampler's accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightLog {
    /// Sampler configuration the log was recorded under.
    pub cfg: FlightConfig,
    /// Total requests the recorder saw.
    pub recorded: u64,
    /// Distinct windows holding at least one exemplar.
    pub windows: u64,
    /// Total kept sampler entries (before worst∩reservoir dedup).
    pub kept_entries: u64,
    /// Resolved exemplars, sorted by `(window, req)`.
    pub samples: Vec<FlightSample>,
}

impl FlightLog {
    /// The exemplar for request `req`, if it was kept.
    pub fn find(&self, req: u32) -> Option<&FlightSample> {
        self.samples.iter().find(|s| s.skeleton.req == req)
    }

    /// Whether every sample satisfies the span-partition identity.
    pub fn identity_holds(&self) -> bool {
        self.samples.iter().all(FlightSample::identity_holds)
    }

    /// The sampler's hard memory bound: `windows × (worst + reservoir)`.
    pub fn entry_bound(&self) -> u64 {
        self.windows * self.cfg.per_window_budget()
    }

    /// Estimated peak bytes of the exemplar store: kept skeletons plus
    /// the resolved span vectors.
    pub fn estimated_bytes(&self) -> u64 {
        let skeletons = self.kept_entries * std::mem::size_of::<FlightSkeleton>() as u64;
        let spans: u64 = self
            .samples
            .iter()
            .map(|s| (s.spans.len() * std::mem::size_of::<(SpanKind, SimDuration)>()) as u64)
            .sum();
        skeletons + spans
    }

    /// The tumbling window holding instant `t`.
    pub fn window_of(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.cfg.window.as_nanos().max(1)
    }

    /// The window's p50 exemplar: the median-latency member of the
    /// window's uniform reservoir (falling back to all of the window's
    /// exemplars when the reservoir is empty) — the baseline a tail
    /// waterfall is rendered against. A documented approximation: the
    /// true window median lives in the full population the sampler
    /// deliberately does not keep.
    pub fn p50_exemplar(&self, window: u64) -> Option<&FlightSample> {
        let pick = |uniform_only: bool| {
            let mut members: Vec<&FlightSample> = self
                .samples
                .iter()
                .filter(|s| s.window == window && (!uniform_only || s.uniform))
                .collect();
            members.sort_by_key(|s| (s.latency(), s.skeleton.req));
            let mid = members.len().checked_sub(1)? / 2;
            members.get(mid).copied()
        };
        pick(true).or_else(|| pick(false))
    }

    /// Every kept exemplar as a `(request id, latency, settle)` triple
    /// in request-id order — the feed for the OpenMetrics exemplar
    /// export ([`crate::metrics::to_prometheus_with_exemplars`]).
    pub fn exemplar_points(&self) -> Vec<(u32, SimDuration, SimTime)> {
        self.samples
            .iter()
            .map(|s| (s.skeleton.req, s.latency(), s.skeleton.settle))
            .collect()
    }

    /// Exemplar request ids settling inside `[start, end)`, worst
    /// first; `tenant` narrows to one tenant when given.
    pub fn exemplars_between(&self, tenant: Option<u32>, start: SimTime, end: SimTime) -> Vec<u32> {
        let mut hits: Vec<&FlightSample> = self
            .samples
            .iter()
            .filter(|s| start <= s.skeleton.settle && s.skeleton.settle < end)
            .filter(|s| tenant.map_or(true, |t| s.skeleton.tenant == t))
            .collect();
        hits.sort_by_key(|s| (std::cmp::Reverse(s.latency()), s.skeleton.req));
        hits.into_iter().map(|s| s.skeleton.req).collect()
    }

    /// Renders one request's span waterfall, optionally with a per-span
    /// delta column against a baseline exemplar (typically the window's
    /// p50). Deterministic text: virtual-time figures only.
    pub fn render_waterfall(
        &self,
        sample: &FlightSample,
        baseline: Option<&FlightSample>,
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let skel = &sample.skeleton;
        let total = sample.latency();
        let _ = writeln!(
            out,
            "request #{} | tenant {} | gpu {} | batch {} | window w{:04} | {}{}",
            skel.req,
            skel.tenant,
            skel.gpu,
            skel.batch,
            sample.window,
            if skel.cold {
                "cold spdm"
            } else {
                "warm session"
            },
            if skel.rejected { " | REJECTED" } else { "" },
        );
        let _ = writeln!(
            out,
            "  arrival {} | dispatch {} | settle {} | latency {}",
            skel.arrival, skel.dispatch, skel.settle, total
        );
        let f = &sample.faults;
        if f.injected + f.retries + f.recovered + f.degraded + f.aborted > 0 {
            let _ = writeln!(
                out,
                "  recovery: injected {} | retries {} | recovered {} | degraded {} | aborted {}",
                f.injected, f.retries, f.recovered, f.degraded, f.aborted
            );
        }
        let delta_head = baseline.map(|b| format!("vs p50 #{}", b.skeleton.req));
        match &delta_head {
            Some(h) => {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>12} {:>12} {:>7}  {:>14}",
                    "span", "start", "duration", "share", h
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>12} {:>12} {:>7}",
                    "span", "start", "duration", "share"
                );
            }
        }
        let mut cursor = SimDuration::ZERO;
        for &(kind, d) in &sample.spans {
            let share_milli = if total.is_zero() {
                0
            } else {
                d.as_nanos().saturating_mul(1000) / total.as_nanos()
            };
            let share = format!("{}.{}%", share_milli / 10, share_milli % 10);
            let start = format!("+{cursor}");
            match baseline {
                Some(b) => {
                    let bd = b.span_duration(kind);
                    let delta = if d >= bd {
                        format!("+{}", d - bd)
                    } else {
                        format!("-{}", bd - d)
                    };
                    let _ = writeln!(
                        out,
                        "  {:<16} {:>12} {:>12} {:>7}  {:>14}",
                        kind.name(),
                        start,
                        d.to_string(),
                        share,
                        delta
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  {:<16} {:>12} {:>12} {:>7}",
                        kind.name(),
                        start,
                        d.to_string(),
                        share
                    );
                }
            }
            cursor += d;
        }
        let identity = if sample.identity_holds() {
            "OK"
        } else {
            "VIOLATED"
        };
        let _ = writeln!(
            out,
            "  {:<16} {:>12} {:>12}  span-identity {}",
            "total",
            "",
            total.to_string(),
            identity
        );
        out
    }
}

impl ToJson for FlightLog {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "window_ns".to_string(),
                Json::U64(self.cfg.window.as_nanos()),
            ),
            ("worst".to_string(), Json::U64(self.cfg.worst as u64)),
            (
                "reservoir".to_string(),
                Json::U64(self.cfg.reservoir as u64),
            ),
            ("recorded".to_string(), Json::U64(self.recorded)),
            ("windows".to_string(), Json::U64(self.windows)),
            ("kept_entries".to_string(), Json::U64(self.kept_entries)),
            (
                "estimated_bytes".to_string(),
                Json::U64(self.estimated_bytes()),
            ),
            (
                "samples".to_string(),
                Json::Arr(self.samples.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::micros(us)
    }

    fn skel(req: u32, arrival_us: u64, dispatch_us: u64, settle_us: u64) -> FlightSkeleton {
        FlightSkeleton {
            req,
            tenant: req % 2,
            gpu: 0,
            batch: 2,
            arrival: t(arrival_us),
            dispatch: t(dispatch_us),
            settle: t(settle_us),
            spdm: SimDuration::micros(3),
            doorbell: SimDuration::micros(1),
            cold: true,
            rejected: false,
        }
    }

    fn decomp_for(shape_us: u64) -> ShapeDecomp {
        let mut attr = Attribution::default();
        attr.add(ResourceClass::Crypto, SimDuration::micros(shape_us / 2));
        attr.add(
            ResourceClass::ComputeEngine,
            SimDuration::micros(shape_us / 4),
        );
        ShapeDecomp {
            total: SimDuration::micros(shape_us),
            attr,
            faults: FaultCounts::default(),
        }
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let mut r = FlightRecorder::new();
        assert!(!r.is_enabled());
        r.record(skel(0, 0, 10, 100));
        assert_eq!(r.recorded(), 0);
        assert_eq!(r.kept_entries(), 0);
        let log = r.resolve(&[], &[]);
        assert!(log.samples.is_empty());
        assert!(log.identity_holds());
    }

    #[test]
    fn planes_mask_gates_enablement() {
        let cfg = FlightConfig::default();
        assert!(!FlightRecorder::for_planes(Planes::ALL, cfg).is_enabled());
        assert!(FlightRecorder::for_planes(Planes::ALL | Planes::FLIGHT, cfg).is_enabled());
    }

    #[test]
    fn span_identity_partitions_latency_exactly() {
        let mut r = FlightRecorder::enabled(FlightConfig::default());
        // dispatch-arrival=10, spdm=3, doorbell=1, shape=40 (attr 20+10,
        // other 10), margin = 90-3-1-40 = 46.
        r.record(skel(7, 0, 10, 100));
        let log = r.resolve(&[0; 8], &[decomp_for(40)]);
        let s = log.find(7).expect("kept");
        assert!(s.identity_holds());
        assert_eq!(s.latency(), SimDuration::micros(100));
        assert_eq!(
            s.span_duration(SpanKind::QueueWait),
            SimDuration::micros(10)
        );
        assert_eq!(
            s.span_duration(SpanKind::Service(ResourceClass::Crypto)),
            SimDuration::micros(20)
        );
        assert_eq!(
            s.span_duration(SpanKind::ServiceOther),
            SimDuration::micros(10)
        );
        assert_eq!(
            s.span_duration(SpanKind::BatchMargin),
            SimDuration::micros(46)
        );
        assert!(log.identity_holds());
    }

    #[test]
    fn rejection_is_a_single_queue_wait_span() {
        let mut r = FlightRecorder::enabled(FlightConfig::default());
        let mut s = skel(3, 5, 5, 5);
        s.rejected = true;
        s.spdm = SimDuration::ZERO;
        s.doorbell = SimDuration::ZERO;
        r.record(s);
        let log = r.resolve(&[], &[]);
        let kept = log.find(3).expect("kept");
        assert_eq!(kept.spans.len(), 1);
        assert_eq!(kept.spans[0].0.name(), "queue_wait");
        assert!(kept.identity_holds());
    }

    #[test]
    fn unresolvable_shape_collapses_to_service_other() {
        let mut r = FlightRecorder::enabled(FlightConfig::default());
        r.record(skel(9, 0, 10, 100));
        // No shape tables at all: service decomposes to a zero `other`
        // span and the margin absorbs the rest — identity still exact.
        let log = r.resolve(&[], &[]);
        let s = log.find(9).expect("kept");
        assert!(s.identity_holds());
        assert_eq!(
            s.span_duration(SpanKind::BatchMargin),
            SimDuration::micros(86)
        );
    }

    #[test]
    fn oversized_attribution_falls_back_without_breaking_identity() {
        let mut attr = Attribution::default();
        attr.add(ResourceClass::Crypto, SimDuration::micros(500));
        let d = ShapeDecomp {
            total: SimDuration::micros(40),
            attr,
            faults: FaultCounts::default(),
        };
        let mut r = FlightRecorder::enabled(FlightConfig::default());
        r.record(skel(1, 0, 10, 100));
        let log = r.resolve(&[0, 0], &[d]);
        let s = log.find(1).expect("kept");
        assert!(s.identity_holds());
        assert_eq!(
            s.span_duration(SpanKind::ServiceOther),
            SimDuration::micros(40)
        );
    }

    #[test]
    fn sampler_is_insertion_order_independent_and_bounded() {
        let cfg = FlightConfig {
            window: SimDuration::millis(1),
            worst: 2,
            reservoir: 3,
            seed: 42,
        };
        let skels: Vec<FlightSkeleton> = (0..200u32)
            .map(|i| skel(i, 0, 10, 20 + u64::from(i % 37) * 13))
            .collect();
        let mut fwd = FlightRecorder::enabled(cfg);
        let mut rev = FlightRecorder::enabled(cfg);
        for s in &skels {
            fwd.record(*s);
        }
        for s in skels.iter().rev() {
            rev.record(*s);
        }
        assert_eq!(fwd.kept_entries(), rev.kept_entries());
        let a = fwd.resolve(&[], &[]);
        let b = rev.resolve(&[], &[]);
        assert_eq!(a, b);
        assert!(a.kept_entries <= a.entry_bound());
        assert!(a.windows >= 1);
        assert_eq!(a.recorded, 200);
    }

    #[test]
    fn worst_keep_is_the_true_tail() {
        let cfg = FlightConfig {
            window: SimDuration::secs(1),
            worst: 2,
            reservoir: 0,
            seed: 1,
        };
        let mut r = FlightRecorder::enabled(cfg);
        for i in 0..50u32 {
            r.record(skel(i, 0, 10, 20 + u64::from(i)));
        }
        let log = r.resolve(&[], &[]);
        let kept: Vec<u32> = log.samples.iter().map(FlightSample::req).collect();
        assert_eq!(kept, vec![48, 49], "the two worst latencies, req order");
        assert!(log.samples.iter().all(|s| s.tail && !s.uniform));
    }

    #[test]
    fn overlapping_keeps_are_deduped_with_both_flags() {
        let cfg = FlightConfig {
            window: SimDuration::secs(1),
            worst: 8,
            reservoir: 8,
            seed: 1,
        };
        let mut r = FlightRecorder::enabled(cfg);
        for i in 0..4u32 {
            r.record(skel(i, 0, 10, 20 + u64::from(i)));
        }
        let log = r.resolve(&[], &[]);
        // Few enough records that every one is kept by both samplers.
        assert_eq!(log.samples.len(), 4);
        assert!(log.samples.iter().all(|s| s.tail && s.uniform));
        assert_eq!(log.kept_entries, 8);
    }

    #[test]
    fn reservoir_replays_under_its_seed_and_differs_across_seeds() {
        let base = FlightConfig {
            window: SimDuration::millis(1),
            worst: 0,
            reservoir: 4,
            seed: 0xAB,
        };
        let run = |seed: u64| {
            let mut r = FlightRecorder::enabled(FlightConfig { seed, ..base });
            for i in 0..300u32 {
                r.record(skel(i, 0, 10, 500));
            }
            let log = r.resolve(&[], &[]);
            log.samples
                .iter()
                .map(FlightSample::req)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(0xAB), run(0xAB), "same seed, same reservoir");
        assert_ne!(run(0xAB), run(0xCD), "different seed, different sample");
    }

    #[test]
    fn p50_exemplar_is_the_reservoir_median() {
        let cfg = FlightConfig {
            window: SimDuration::secs(1),
            worst: 1,
            reservoir: 16,
            seed: 7,
        };
        let mut r = FlightRecorder::enabled(cfg);
        for i in 0..10u32 {
            r.record(skel(i, 0, 10, 20 + u64::from(i) * 10));
        }
        let log = r.resolve(&[], &[]);
        let p50 = log.p50_exemplar(0).expect("non-empty window");
        assert!(p50.uniform);
        // 10 uniform members sorted by latency: median index (10-1)/2 = 4.
        assert_eq!(p50.req(), 4);
        assert!(log.p50_exemplar(99).is_none());
    }

    #[test]
    fn exemplars_between_filters_and_ranks() {
        let cfg = FlightConfig {
            window: SimDuration::millis(1),
            worst: 4,
            reservoir: 4,
            seed: 7,
        };
        let mut r = FlightRecorder::enabled(cfg);
        for i in 0..8u32 {
            r.record(skel(i, 0, 10, 100 + u64::from(i) * 100));
        }
        let log = r.resolve(&[], &[]);
        let all = log.exemplars_between(None, SimTime::ZERO, t(1_000));
        assert!(!all.is_empty());
        for pair in all.windows(2) {
            let (a, b) = (log.find(pair[0]).unwrap(), log.find(pair[1]).unwrap());
            assert!(a.latency() >= b.latency(), "worst first");
        }
        let t0 = log.exemplars_between(Some(0), SimTime::ZERO, t(1_000));
        assert!(t0.iter().all(|&req| req % 2 == 0));
        assert!(log.exemplars_between(None, t(2_000), t(3_000)).is_empty());
    }

    #[test]
    fn waterfall_renders_every_span_and_the_identity_trailer() {
        let mut r = FlightRecorder::enabled(FlightConfig::default());
        r.record(skel(7, 0, 10, 100));
        r.record(skel(8, 0, 12, 60));
        let log = r.resolve(&[0; 9], &[decomp_for(40)]);
        let s = log.find(7).unwrap();
        let base = log.find(8).unwrap();
        let text = log.render_waterfall(s, Some(base));
        assert!(text.contains("request #7"));
        assert!(text.contains("queue_wait"));
        assert!(text.contains("svc_crypto"));
        assert!(text.contains("batch_margin"));
        assert!(text.contains("span-identity OK"));
        assert!(text.contains("vs p50 #8"));
        let solo = log.render_waterfall(s, None);
        assert!(!solo.contains("vs p50"));
    }

    #[test]
    fn env_overrides_parse() {
        // Exercises only the pure parsing helpers (no env mutation —
        // tests run in parallel).
        let cfg = FlightConfig::default();
        assert_eq!(cfg.per_window_budget(), 8);
        assert_eq!(mix(1, 2, 3), mix(1, 2, 3));
        assert_ne!(mix(1, 2, 3), mix(1, 2, 4));
        assert_ne!(mix(1, 2, 3), mix(2, 2, 3));
    }

    #[test]
    fn estimated_bytes_tracks_keeps() {
        let mut r = FlightRecorder::enabled(FlightConfig::default());
        r.record(skel(0, 0, 10, 100));
        let log = r.resolve(&[], &[]);
        assert!(log.estimated_bytes() > 0);
        let empty = FlightRecorder::new().resolve(&[], &[]);
        assert_eq!(empty.estimated_bytes(), 0);
    }
}
