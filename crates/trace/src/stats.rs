//! Distribution statistics: CDFs, summaries, and slowdown helpers used by
//! the figure harnesses (Fig. 11's KLO/KET CDFs and every "×N" the paper
//! reports).

use hcc_types::json::{Json, ToJson};
use hcc_types::SimDuration;

/// An empirical cumulative distribution over durations.
///
/// ```
/// use hcc_trace::Cdf;
/// use hcc_types::SimDuration;
/// let cdf = Cdf::from_durations(
///     (1..=100).map(SimDuration::micros).collect::<Vec<_>>(),
/// );
/// assert_eq!(cdf.quantile(0.5), SimDuration::micros(50));
/// assert!(cdf.mean().as_micros_f64() > 50.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cdf {
    sorted: Vec<SimDuration>,
}

impl Cdf {
    /// Builds a CDF from unsorted samples.
    pub fn from_durations(mut samples: Vec<SimDuration>) -> Self {
        samples.sort_unstable();
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Sorted samples (ascending).
    pub fn samples(&self) -> &[SimDuration] {
        &self.sorted
    }

    /// The `p`-quantile (nearest-rank), `p` clamped to `[0, 1]`.
    ///
    /// Total on every input: an empty CDF yields `SimDuration::ZERO`
    /// (there is no latency to report, not a programming error — a tenant
    /// whose every request was rejected still gets a defined row), and a
    /// single-sample CDF yields that sample for every `p`. The serving
    /// p50/p99/p999 tables lean on this.
    pub fn quantile(&self, p: f64) -> SimDuration {
        crate::quantile::nearest_rank(&self.sorted, p)
    }

    /// Arithmetic mean over **all** samples. Fig. 11 computes the average
    /// "over all data points, without any removals" even when the plot
    /// trims the tail.
    pub fn mean(&self) -> SimDuration {
        if self.sorted.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u128 = self.sorted.iter().map(|d| u128::from(d.as_nanos())).sum();
        SimDuration::from_nanos((total / self.sorted.len() as u128) as u64)
    }

    /// A copy with the `n` largest samples removed — Fig. 11a removes the
    /// top 5 launch durations to keep the plot on one scale.
    pub fn trim_top(&self, n: usize) -> Cdf {
        let keep = self.sorted.len().saturating_sub(n);
        Cdf {
            sorted: self.sorted[..keep].to_vec(),
        }
    }

    /// Evaluates the CDF as `(duration, cumulative fraction)` pairs, one
    /// per sample — the series a figure plots.
    pub fn points(&self) -> Vec<(SimDuration, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, d)| (*d, (i + 1) as f64 / n))
            .collect()
    }
}

impl ToJson for Cdf {
    /// Summary export for plotting pipelines: sample count, mean, and the
    /// tail quantiles the serving reports table (p50/p90/p99/p999), all in
    /// nanoseconds. Raw samples are deliberately omitted — a 10⁵-request
    /// serving run would otherwise dump 10⁵ numbers per tenant; use
    /// [`Cdf::points`] directly when the full curve is wanted.
    fn to_json(&self) -> Json {
        let q = |p: f64| Json::U64(self.quantile(p).as_nanos());
        Json::Obj(vec![
            ("count".to_string(), Json::U64(self.len() as u64)),
            ("mean_ns".to_string(), Json::U64(self.mean().as_nanos())),
            ("p50_ns".to_string(), q(0.50)),
            ("p90_ns".to_string(), q(0.90)),
            ("p99_ns".to_string(), q(0.99)),
            ("p999_ns".to_string(), q(0.999)),
        ])
    }
}

/// Five-number-style summary of a duration sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median (p50).
    pub median: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// Minimum.
    pub min: SimDuration,
    /// Maximum.
    pub max: SimDuration,
    /// Sum of all samples.
    pub total: SimDuration,
}

impl Summary {
    /// Summarizes `samples`; returns `None` when empty.
    pub fn of(samples: &[SimDuration]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let cdf = Cdf::from_durations(samples.to_vec());
        Some(Summary {
            count: cdf.len(),
            mean: cdf.mean(),
            median: cdf.quantile(0.5),
            p95: cdf.quantile(0.95),
            min: cdf.samples()[0],
            max: *cdf.samples().last().expect("non-empty"),
            total: samples.iter().copied().sum(),
        })
    }
}

/// Geometric mean of slowdown ratios — used when averaging per-app
/// slowdowns whose spread covers orders of magnitude (e.g. UVM-CC KET).
/// Non-finite and non-positive ratios are skipped.
pub fn geomean(ratios: &[f64]) -> f64 {
    let logs: Vec<f64> = ratios
        .iter()
        .copied()
        .filter(|r| r.is_finite() && *r > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        return f64::NAN;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Arithmetic mean of ratios (the paper's default "on average ×N" metric).
/// Non-finite entries are skipped.
pub fn mean_ratio(ratios: &[f64]) -> f64 {
    let vals: Vec<f64> = ratios.iter().copied().filter(|r| r.is_finite()).collect();
    if vals.is_empty() {
        return f64::NAN;
    }
    vals.iter().sum::<f64>() / vals.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::micros(v)
    }

    #[test]
    fn quantiles_nearest_rank() {
        let cdf = Cdf::from_durations(vec![us(4), us(1), us(3), us(2)]);
        assert_eq!(cdf.quantile(0.0), us(1));
        assert_eq!(cdf.quantile(0.25), us(1));
        assert_eq!(cdf.quantile(0.5), us(2));
        assert_eq!(cdf.quantile(1.0), us(4));
    }

    #[test]
    fn mean_includes_all_points_trim_does_not() {
        let cdf = Cdf::from_durations(vec![us(1), us(1), us(1), us(1), us(1000)]);
        assert!(cdf.mean() > us(200));
        let trimmed = cdf.trim_top(1);
        assert_eq!(trimmed.len(), 4);
        assert_eq!(*trimmed.samples().last().unwrap(), us(1));
        // The paper's Fig. 11 note: averages are over untrimmed data.
        assert!(cdf.mean() > trimmed.mean());
    }

    #[test]
    fn points_are_monotone_in_both_axes() {
        let cdf = Cdf::from_durations((0..50).rev().map(us).collect());
        let pts = cdf.points();
        for pair in pts.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 < pair[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[us(1), us(2), us(3), us(4), us(90)]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.median, us(3));
        assert_eq!(s.min, us(1));
        assert_eq!(s.max, us(90));
        assert_eq!(s.total, us(100));
        assert_eq!(s.mean, us(20));
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn geomean_handles_wide_spreads() {
        let g = geomean(&[1.0, 100.0]);
        assert!((g - 10.0).abs() < 1e-9);
        assert!(geomean(&[]).is_nan());
        assert!((geomean(&[2.0, f64::INFINITY, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn mean_ratio_skips_nonfinite() {
        assert!((mean_ratio(&[1.0, 2.0, f64::NAN, 3.0]) - 2.0).abs() < 1e-12);
        assert!(mean_ratio(&[f64::NAN]).is_nan());
    }

    #[test]
    fn empty_quantile_is_defined() {
        let cdf = Cdf::from_durations(vec![]);
        for p in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(cdf.quantile(p), SimDuration::ZERO);
        }
        assert_eq!(cdf.mean(), SimDuration::ZERO);
    }

    #[test]
    fn single_sample_quantiles_are_that_sample() {
        let cdf = Cdf::from_durations(vec![us(7)]);
        for p in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(cdf.quantile(p), us(7), "p={p}");
        }
    }

    #[test]
    fn tail_quantiles_on_small_samples() {
        // 1000 samples 1..=1000 µs: nearest-rank p99 = 990, p999 = 999.
        let cdf = Cdf::from_durations((1..=1000).map(us).collect());
        assert_eq!(cdf.quantile(0.5), us(500));
        assert_eq!(cdf.quantile(0.99), us(990));
        assert_eq!(cdf.quantile(0.999), us(999));
        // Two samples: every p > 0.5 lands on the larger one.
        let two = Cdf::from_durations(vec![us(1), us(9)]);
        assert_eq!(two.quantile(0.99), us(9));
        assert_eq!(two.quantile(0.999), us(9));
        assert_eq!(two.quantile(0.5), us(1));
    }

    #[test]
    fn cdf_json_summarizes_quantiles() {
        let cdf = Cdf::from_durations((1..=100).map(us).collect());
        let doc = Json::parse(&cdf.to_json_string()).unwrap();
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(100));
        assert_eq!(doc.get("p50_ns").and_then(Json::as_u64), Some(50_000));
        assert_eq!(doc.get("p99_ns").and_then(Json::as_u64), Some(99_000));
        assert_eq!(doc.get("p999_ns").and_then(Json::as_u64), Some(100_000));
        // Empty CDFs export zeros, not errors.
        let empty = Json::parse(&Cdf::from_durations(vec![]).to_json_string()).unwrap();
        assert_eq!(empty.get("count").and_then(Json::as_u64), Some(0));
        assert_eq!(empty.get("p999_ns").and_then(Json::as_u64), Some(0));
    }
}
