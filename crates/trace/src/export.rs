//! Chrome trace-event export: serialize a [`Timeline`] into the JSON
//! array format `chrome://tracing` / Perfetto load natively, so simulated
//! runs can be inspected with the same tooling people point at real
//! Nsight exports.

use std::fmt::Write as _;

use hcc_types::{CopyKind, MemSpace};

use crate::causal::CausalGraph;
use crate::event::{EventKind, TraceEvent};
use crate::flight::{FlightLog, SpanKind};
use crate::metrics::MetricsSet;
use crate::timeline::Timeline;

/// Track (Chrome "tid") assignment mirroring how Nsight lays out rows.
fn track_of(event: &TraceEvent) -> (&'static str, u32) {
    match event.kind {
        EventKind::Launch { .. }
        | EventKind::Alloc { .. }
        | EventKind::Free { .. }
        | EventKind::Sync => ("host", 0),
        EventKind::Crypto { .. }
        | EventKind::Hypercall { .. }
        | EventKind::BounceReserve { .. } => ("host", 1),
        // Fault recovery is host-runtime work; give it its own row.
        EventKind::FaultInjected { .. } | EventKind::Retry { .. } | EventKind::Degraded { .. } => {
            ("host", 2)
        }
        EventKind::Kernel { .. } | EventKind::UvmFault { .. } => ("gpu", 10),
        EventKind::Memcpy { kind, .. } => match kind {
            CopyKind::H2D => ("gpu", 11),
            CopyKind::D2H => ("gpu", 12),
            CopyKind::D2D => ("gpu", 13),
        },
    }
}

fn name_of(event: &TraceEvent) -> String {
    match &event.kind {
        EventKind::Launch { kernel, first, .. } => {
            if *first {
                format!("cudaLaunchKernel({kernel}) [first]")
            } else {
                format!("cudaLaunchKernel({kernel})")
            }
        }
        EventKind::Kernel { kernel, uvm } => {
            if *uvm {
                format!("{kernel} [uvm]")
            } else {
                kernel.to_string()
            }
        }
        EventKind::Memcpy {
            kind,
            bytes,
            managed,
            ..
        } => {
            if *managed {
                format!("Memcpy {kind} {bytes} [Managed]")
            } else {
                format!("Memcpy {kind} {bytes}")
            }
        }
        EventKind::Alloc { space, bytes } => match space {
            MemSpace::Host => format!("cudaMallocHost {bytes}"),
            MemSpace::Device => format!("cudaMalloc {bytes}"),
            MemSpace::Managed => format!("cudaMallocManaged {bytes}"),
        },
        EventKind::Free { space, bytes } => format!("cudaFree[{space}] {bytes}"),
        EventKind::Sync => "cudaDeviceSynchronize".to_string(),
        EventKind::Crypto { bytes, encrypt } => {
            if *encrypt {
                format!("AES-GCM encrypt {bytes}")
            } else {
                format!("AES-GCM decrypt {bytes}")
            }
        }
        EventKind::Hypercall { reason } => format!("tdx_hypercall({reason})"),
        EventKind::BounceReserve { bytes, converted } => {
            if *converted {
                format!("bounce reserve {bytes} [convert]")
            } else {
                format!("bounce reserve {bytes}")
            }
        }
        EventKind::UvmFault { pages, .. } => format!("uvm fault service ({pages} pages)"),
        EventKind::FaultInjected { site, attempts } => {
            format!("fault injected [{site}] x{attempts}")
        }
        EventKind::Retry { site, attempt } => format!("retry [{site}] #{attempt}"),
        EventKind::Degraded { site } => format!("degraded staging [{site}]"),
    }
}

/// The one Chrome trace-event export entry point: an options struct
/// selecting which overlays accompany the span array.
///
/// Replaces the old trio of free functions (`to_chrome_trace`,
/// `to_chrome_trace_with_metrics`, `to_chrome_trace_full`), which remain
/// as deprecated wrappers. Output is byte-identical to the old API for
/// every option combination.
///
/// ```
/// use hcc_trace::{ChromeExport, Timeline};
///
/// let json = ChromeExport::new().render(&Timeline::new());
/// assert_eq!(json, "[\n\n]\n");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ChromeExport<'a> {
    metrics: Option<&'a MetricsSet>,
    causal: Option<&'a CausalGraph>,
}

impl<'a> ChromeExport<'a> {
    /// Spans only — the plain `chrome://tracing` / Perfetto export
    /// ("X" complete events, microsecond timestamps).
    #[must_use]
    pub fn new() -> Self {
        ChromeExport::default()
    }

    /// Additionally emits every gauge in `metrics` as a Perfetto counter
    /// track ("C" events under the `metrics` process), so spans and
    /// queue depths line up on one timeline. Each gauge change-point
    /// becomes one counter sample; empty gauges still get a zero sample
    /// so their track exists.
    #[must_use]
    pub fn with_metrics(mut self, metrics: &'a MetricsSet) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Additionally emits the causal graph as flow events
    /// (`"ph": "s"`/`"f"`) so recorded causal edges render as arrows
    /// between their endpoint slices in Perfetto. Each edge binds at the
    /// source event's end and the target event's start (`"bp": "e"`
    /// attaches to the enclosing slice).
    #[must_use]
    pub fn with_causal(mut self, causal: &'a CausalGraph) -> Self {
        self.causal = Some(causal);
        self
    }

    /// Serializes `timeline` (plus the selected overlays) as a Chrome
    /// trace-event JSON array. Load the output in `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    #[must_use]
    pub fn render(&self, timeline: &Timeline) -> String {
        render(timeline, self.metrics, self.causal)
    }

    /// Serializes a flight-recorder log as a cluster-scale Chrome
    /// trace-event JSON array: queue wait renders under the `queue`
    /// process, every other span under its request's `gpu{N}` process
    /// (one row per tenant), and each sampled request gets an
    /// arrival→settle flow arrow (`"ph": "s"`/`"f"`, id = request id)
    /// so the dispatch handoff draws as an arrow crossing processes.
    /// Rejected requests keep their queue slice but get no arrow.
    #[must_use]
    pub fn render_flight(log: &FlightLog) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        for sample in &log.samples {
            let skel = &sample.skeleton;
            let mut cursor = skel.arrival;
            for &(kind, dur) in &sample.spans {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let process = match kind {
                    SpanKind::QueueWait => "queue".to_string(),
                    _ => format!("gpu{}", skel.gpu),
                };
                let _ = write!(
                    out,
                    "  {{\"name\": \"{name}\", \"cat\": \"flight\", \"ph\": \"X\", \
                     \"ts\": {ts:.3}, \"dur\": {dur:.3}, \"pid\": \"{process}\", \
                     \"tid\": {tid}, \"args\": {{\"request\": {req}, \"window\": {win}}}}}",
                    name = kind.name(),
                    ts = cursor.as_micros_f64(),
                    dur = dur.as_micros_f64(),
                    tid = skel.tenant,
                    req = skel.req,
                    win = sample.window,
                );
                cursor = cursor + dur;
            }
            if skel.rejected {
                continue;
            }
            let mut write_flow = |ph: &str, ts: f64, process: &str, bind: &str| {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "  {{\"name\": \"request\", \"cat\": \"flight\", \"ph\": \"{ph}\", \
                     \"id\": {id}, \"ts\": {ts:.3}, \"pid\": \"{process}\", \
                     \"tid\": {tid}{bind}}}",
                    id = skel.req,
                    tid = skel.tenant,
                );
            };
            write_flow("s", skel.arrival.as_micros_f64(), "queue", "");
            write_flow(
                "f",
                skel.settle.as_micros_f64(),
                &format!("gpu{}", skel.gpu),
                ", \"bp\": \"e\"",
            );
        }
        out.push_str("\n]\n");
        out
    }
}

fn render(
    timeline: &Timeline,
    metrics: Option<&MetricsSet>,
    causal: Option<&CausalGraph>,
) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for event in timeline.events() {
        let (process, tid) = track_of(event);
        let name = name_of(event).replace('"', "'");
        let ts = event.start.as_micros_f64();
        let dur = event.duration().as_micros_f64();
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "  {{\"name\": \"{name}\", \"cat\": \"{cat}\", \"ph\": \"X\", \
             \"ts\": {ts:.3}, \"dur\": {dur:.3}, \"pid\": \"{process}\", \"tid\": {tid}, \
             \"args\": {{\"correlation\": {corr}}}}}",
            cat = event.kind.tag(),
            corr = event.correlation,
        );
    }
    if let Some(graph) = causal {
        for (id, edge) in graph.edges().iter().enumerate() {
            let (Some(from), Some(to)) = (timeline.get(edge.from), timeline.get(edge.to)) else {
                continue;
            };
            let mut write_flow = |ph: &str, event: &TraceEvent, ts: f64, bind: &str| {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let (process, tid) = track_of(event);
                let _ = write!(
                    out,
                    "  {{\"name\": \"{kind}\", \"cat\": \"causal\", \"ph\": \"{ph}\", \
                     \"id\": {id}, \"ts\": {ts:.3}, \"pid\": \"{process}\", \"tid\": {tid}{bind}}}",
                    kind = edge.kind.tag(),
                );
            };
            write_flow("s", from, from.end.as_micros_f64(), "");
            write_flow("f", to, to.start.as_micros_f64(), ", \"bp\": \"e\"");
        }
    }
    if let Some(set) = metrics {
        for series in &set.gauges {
            let name = series.name.replace('"', "'");
            let mut write_sample = |ts: f64, value: i64| {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "  {{\"name\": \"{name}\", \"cat\": \"metric\", \"ph\": \"C\", \
                     \"ts\": {ts:.3}, \"pid\": \"metrics\", \"tid\": 0, \
                     \"args\": {{\"value\": {value}}}}}",
                );
            };
            if series.samples.is_empty() {
                write_sample(0.0, 0);
            } else {
                // An explicit leading zero keeps Perfetto's step
                // rendering from back-extrapolating the first value.
                if series.samples[0].0.as_nanos() > 0 {
                    write_sample(0.0, 0);
                }
                for &(t, v) in &series.samples {
                    write_sample(t.as_micros_f64(), v);
                }
            }
        }
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::KernelId;
    use hcc_types::{ByteSize, HostMemKind, SimDuration, SimTime};

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    fn sample() -> Timeline {
        let mut tl = Timeline::new();
        tl.push(
            TraceEvent::new(
                EventKind::Launch {
                    kernel: KernelId(0),
                    queue_wait: SimDuration::ZERO,
                    first: true,
                },
                t(0),
                t(6),
            )
            .with_correlation(1),
        );
        tl.push(
            TraceEvent::new(
                EventKind::Kernel {
                    kernel: KernelId(0),
                    uvm: false,
                },
                t(8),
                t(108),
            )
            .with_correlation(1),
        );
        tl.push(TraceEvent::new(
            EventKind::Memcpy {
                kind: CopyKind::H2D,
                bytes: ByteSize::mib(1),
                mem: HostMemKind::Pageable,
                managed: false,
            },
            t(110),
            t(140),
        ));
        tl
    }

    #[test]
    fn output_is_valid_json_shape() {
        let json = ChromeExport::new().render(&sample());
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        // One object per event, comma-separated.
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 3);
        assert_eq!(json.matches("},\n").count(), 2);
        // Balanced braces.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn events_carry_expected_names_and_tracks() {
        let json = ChromeExport::new().render(&sample());
        assert!(json.contains("cudaLaunchKernel(K0) [first]"));
        assert!(json.contains("\"pid\": \"gpu\""));
        assert!(json.contains("\"pid\": \"host\""));
        assert!(json.contains("Memcpy H2D 1.0MiB"));
        assert!(json.contains("\"correlation\": 1"));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let json = ChromeExport::new().render(&sample());
        // The kernel starts at 8 us and runs 100 us.
        assert!(json.contains("\"ts\": 8.000"));
        assert!(json.contains("\"dur\": 100.000"));
    }

    #[test]
    fn empty_timeline_is_an_empty_array() {
        let json = ChromeExport::new().render(&Timeline::new());
        assert_eq!(json, "[\n\n]\n");
    }

    #[test]
    fn causal_edges_become_flow_events() {
        use crate::causal::{CausalEdge, EdgeKind, EventId};

        let tl = sample();
        let mut g = CausalGraph::new(true);
        g.push(CausalEdge::new(
            EventId(0),
            EventId(1),
            EdgeKind::LaunchToExec,
        ));

        let json = ChromeExport::new().with_causal(&g).render(&tl);
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 3);
        assert_eq!(json.matches("\"ph\": \"s\"").count(), 1);
        assert_eq!(json.matches("\"ph\": \"f\"").count(), 1);
        assert!(json.contains("\"name\": \"launch_to_exec\""));
        assert!(json.contains("\"bp\": \"e\""));
        // The arrow leaves the launch's end and lands at the kernel's start.
        assert!(json.contains("\"ph\": \"s\", \"id\": 0, \"ts\": 6.000"));
        assert!(json.contains("\"ph\": \"f\", \"id\": 0, \"ts\": 8.000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        // Without a graph the output is byte-identical to the plain form.
        assert_eq!(
            ChromeExport::new()
                .with_causal(&CausalGraph::new(false))
                .render(&tl),
            ChromeExport::new().render(&tl)
        );
        // Dangling edges are skipped, not exported.
        let mut dangling = CausalGraph::new(true);
        dangling.push(CausalEdge::new(
            EventId(0),
            EventId(99),
            EdgeKind::StreamOrder,
        ));
        let json = ChromeExport::new().with_causal(&dangling).render(&tl);
        assert!(!json.contains("\"ph\": \"s\""));
    }

    #[test]
    fn flight_log_exports_per_gpu_tracks_and_request_arrows() {
        use crate::flight::{FlightConfig, FlightRecorder, FlightSkeleton, ShapeDecomp};

        let mut rec = FlightRecorder::enabled(FlightConfig::default());
        rec.record(FlightSkeleton {
            req: 7,
            tenant: 1,
            gpu: 2,
            batch: 1,
            arrival: t(0),
            dispatch: t(10),
            settle: t(110),
            spdm: SimDuration::ZERO,
            doorbell: SimDuration::micros(4),
            cold: false,
            rejected: false,
        });
        rec.record(FlightSkeleton {
            req: 9,
            tenant: 3,
            gpu: 0,
            batch: 0,
            arrival: t(5),
            dispatch: t(20),
            settle: t(20),
            spdm: SimDuration::ZERO,
            doorbell: SimDuration::ZERO,
            cold: false,
            rejected: true,
        });
        let shape_of = [0u32; 16];
        let log = rec.resolve(&shape_of, &[ShapeDecomp::default()]);
        assert!(log.identity_holds());

        let json = ChromeExport::render_flight(&log);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("\n]\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Queue wait on the shared queue track, the rest on the GPU's own
        // process; the rejected request never leaves the queue.
        assert!(json.contains("\"name\": \"queue_wait\""));
        assert!(json.contains("\"pid\": \"queue\""));
        assert!(json.contains("\"pid\": \"gpu2\""));
        assert!(!json.contains("\"pid\": \"gpu0\""));
        // Exactly one arrival→settle arrow (request 7; request 9 was
        // rejected), bound to the request id.
        assert_eq!(json.matches("\"ph\": \"s\"").count(), 1);
        assert_eq!(json.matches("\"ph\": \"f\"").count(), 1);
        assert!(json.contains("\"ph\": \"s\", \"id\": 7, \"ts\": 0.000"));
        assert!(json.contains("\"ph\": \"f\", \"id\": 7, \"ts\": 110.000"));
        assert!(json.contains("\"bp\": \"e\""));
        // Spans tile the request: queue wait starts at arrival, the next
        // span starts where it ends (dispatch).
        assert!(json.contains("\"name\": \"queue_wait\", \"cat\": \"flight\", \"ph\": \"X\", \"ts\": 0.000, \"dur\": 10.000"));
        assert!(json.contains("\"ts\": 10.000"));
        assert!(json.contains("\"args\": {\"request\": 7, \"window\": 0}"));
    }

    #[test]
    fn empty_flight_log_is_an_empty_array() {
        use crate::flight::{FlightConfig, FlightRecorder, ShapeDecomp};

        let rec = FlightRecorder::enabled(FlightConfig::default());
        let log = rec.resolve(&[], &[ShapeDecomp::default()]);
        assert_eq!(ChromeExport::render_flight(&log), "[\n\n]\n");
    }

    #[test]
    fn metrics_become_counter_tracks() {
        use crate::metrics::{Gauge, MetricsSet};

        let mut set = MetricsSet::new();
        let mut g = Gauge::enabled();
        g.occupy(t(10), t(20));
        set.gauge("gpu.ring.occupancy", &g);
        set.gauge("tee.bounce.occupancy", &Gauge::enabled()); // empty

        let json = ChromeExport::new().with_metrics(&set).render(&sample());
        // Spans are still present alongside the counters.
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 3);
        // Leading zero + two change-points for the ring gauge, one zero
        // sample for the empty bounce gauge.
        assert_eq!(json.matches("\"ph\": \"C\"").count(), 4);
        assert!(json.contains("\"name\": \"gpu.ring.occupancy\""));
        assert!(json.contains("\"name\": \"tee.bounce.occupancy\""));
        assert!(json.contains("\"pid\": \"metrics\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
