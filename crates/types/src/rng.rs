//! Deterministic pseudo-randomness for the simulators.
//!
//! Every stochastic effect in the workspace (launch-overhead jitter, queue
//! noise, fault-arrival spread) draws from [`Xoshiro256`], seeded explicitly
//! so that a (workload, config, seed) triple always reproduces the same
//! trace. The generator is a from-scratch xoshiro256** implementation — no
//! external RNG crate is needed at this layer.

/// SplitMix64 step, used to expand a single `u64` seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** deterministic generator.
///
/// ```
/// use hcc_types::rng::Xoshiro256;
/// let mut a = Xoshiro256::seed_from_u64(7);
/// let mut b = Xoshiro256::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the generator from a single word via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn next_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range must be non-empty");
        // Multiplicative range reduction (Lemire); slight bias is fine for
        // simulation jitter.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Multiplicative jitter factor uniform in `[1 - frac, 1 + frac]`.
    ///
    /// A `frac` of `0.0` returns exactly `1.0`; values are clamped so the
    /// factor is always positive.
    pub fn jitter(&mut self, frac: f64) -> f64 {
        let frac = frac.clamp(0.0, 0.95);
        1.0 - frac + 2.0 * frac * self.next_f64()
    }

    /// Heavy-tailed spike: returns `Some(multiplier)` with probability `p`,
    /// where the multiplier is uniform in `[lo, hi]`. Models the occasional
    /// long launch/hypercall the paper's CDFs show in their right tails
    /// (Fig. 11a).
    pub fn spike(&mut self, p: f64, lo: f64, hi: f64) -> Option<f64> {
        if self.next_f64() < p.clamp(0.0, 1.0) {
            Some(lo + (hi - lo) * self.next_f64())
        } else {
            None
        }
    }

    /// Approximately log-normal factor with median 1.0 and shape `sigma`,
    /// built from a 12-sum uniform approximation of a Gaussian.
    pub fn lognormal(&mut self, sigma: f64) -> f64 {
        let gauss: f64 = (0..12).map(|_| self.next_f64()).sum::<f64>() - 6.0;
        (sigma * gauss).exp()
    }

    /// Two consecutive [`Xoshiro256::lognormal`] draws in one call.
    ///
    /// Bit-identical to calling `lognormal(sigma_a)` then
    /// `lognormal(sigma_b)`: the 24 underlying uniforms are consumed in
    /// the same order and each 12-sum accumulates sequentially. Exists so
    /// the launch hot path pays one call for its gap+KLO pair.
    pub fn lognormal_pair(&mut self, sigma_a: f64, sigma_b: f64) -> (f64, f64) {
        let mut sum_a = 0.0f64;
        for _ in 0..12 {
            sum_a += self.next_f64();
        }
        let mut sum_b = 0.0f64;
        for _ in 0..12 {
            sum_b += self.next_f64();
        }
        (
            (sigma_a * (sum_a - 6.0)).exp(),
            (sigma_b * (sum_b - 6.0)).exp(),
        )
    }

    /// Fork an independent, deterministic child generator (e.g. one per
    /// engine) derived from the parent stream.
    pub fn fork(&mut self) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Xoshiro256::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(r.next_range(7) < 7);
        }
    }

    #[test]
    fn jitter_centered_and_bounded() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let j = r.jitter(0.2);
            assert!((0.8..=1.2).contains(&j));
            sum += j;
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean jitter {mean}");
    }

    #[test]
    fn jitter_zero_is_identity() {
        let mut r = Xoshiro256::seed_from_u64(5);
        assert_eq!(r.jitter(0.0), 1.0);
    }

    #[test]
    fn spike_probability_roughly_holds() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let hits = (0..100_000)
            .filter(|_| r.spike(0.05, 2.0, 10.0).is_some())
            .count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.05).abs() < 0.01, "spike rate {rate}");
    }

    #[test]
    fn lognormal_median_near_one() {
        let mut r = Xoshiro256::seed_from_u64(13);
        let mut vals: Vec<f64> = (0..10_001).map(|_| r.lognormal(0.3)).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[5_000];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn lognormal_pair_is_bit_identical_to_two_draws() {
        let mut a = Xoshiro256::seed_from_u64(21);
        let mut b = Xoshiro256::seed_from_u64(21);
        for _ in 0..1_000 {
            let (x, y) = a.lognormal_pair(0.5, 0.22);
            let x2 = b.lognormal(0.5);
            let y2 = b.lognormal(0.22);
            assert_eq!(x.to_bits(), x2.to_bits());
            assert_eq!(y.to_bits(), y2.to_bits());
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forked_streams_are_independent_but_deterministic() {
        let mut parent1 = Xoshiro256::seed_from_u64(99);
        let mut parent2 = Xoshiro256::seed_from_u64(99);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), parent1.next_u64());
    }
}
