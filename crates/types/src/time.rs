//! Virtual time: instants and durations in integer nanoseconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation's virtual clock, in nanoseconds since the
/// start of the simulation.
///
/// `SimTime` is totally ordered and only ever moves forward inside the
/// simulators. Subtracting two instants yields a [`SimDuration`].
///
/// ```
/// use hcc_types::{SimTime, SimDuration};
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::micros(5);
/// assert_eq!(t1 - t0, SimDuration::micros(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the virtual clock.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `ns` nanoseconds after the origin.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the origin, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the origin, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("virtual clock overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("virtual clock underflow"))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// # Panics
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracted a later SimTime from an earlier one"),
        )
    }
}

/// A span of virtual time, in nanoseconds.
///
/// Durations support addition, scaling by `f64`/`u64`, and division to form
/// dimensionless ratios, which is how every "CC-on vs CC-off" slowdown in
/// the workspace is computed.
///
/// ```
/// use hcc_types::SimDuration;
/// let cc = SimDuration::micros(142);
/// let base = SimDuration::micros(100);
/// assert!((cc / base - 1.42).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration of `s` seconds.
    pub const fn secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from a float number of seconds, rounding to the
    /// nearest nanosecond and saturating negative values to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Creates a duration from a float number of microseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Length in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in microseconds, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Length in milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Length in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if the duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Difference that saturates to zero instead of panicking.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by a non-negative factor, rounding to the
    /// nearest nanosecond. Non-finite or negative factors clamp to zero.
    pub fn scale(self, factor: f64) -> SimDuration {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for SimDuration {
    /// Human-scale display: picks ns/us/ms/s based on magnitude.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 10_000 {
            write!(f, "{ns}ns")
        } else if ns < 10_000_000 {
            write!(f, "{:.2}us", self.as_micros_f64())
        } else if ns < 10_000_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics on underflow; use [`SimDuration::saturating_sub`] when the
    /// ordering is not guaranteed.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    /// Dimensionless ratio of two durations. Division by a zero duration
    /// yields `f64::INFINITY`, matching the paper's convention of reporting
    /// unbounded slowdowns for vanishing baselines.
    fn div(self, rhs: SimDuration) -> f64 {
        if rhs.0 == 0 {
            if self.0 == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / rhs.0 as f64
        }
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a SimDuration> for SimDuration {
    fn sum<I: Iterator<Item = &'a SimDuration>>(iter: I) -> SimDuration {
        iter.copied().sum()
    }
}

impl crate::json::ToJson for SimTime {
    /// Serializes as integer nanoseconds since the origin.
    fn to_json(&self) -> crate::json::Json {
        crate::json::Json::U64(self.as_nanos())
    }
}

impl crate::json::ToJson for SimDuration {
    /// Serializes as integer nanoseconds.
    fn to_json(&self) -> crate::json::Json {
        crate::json::Json::U64(self.as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_500);
        let d = SimDuration::micros(2);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_nanos(10));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::millis(1), SimDuration::micros(1_000));
        assert_eq!(SimDuration::secs(1), SimDuration::millis(1_000));
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration::millis(1_500));
        assert_eq!(
            SimDuration::from_micros_f64(2.5),
            SimDuration::from_nanos(2_500)
        );
    }

    #[test]
    fn negative_or_nan_float_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn ratio_division() {
        let a = SimDuration::micros(142);
        let b = SimDuration::micros(100);
        assert!((a / b - 1.42).abs() < 1e-12);
        assert_eq!(a / SimDuration::ZERO, f64::INFINITY);
        assert_eq!(SimDuration::ZERO / SimDuration::ZERO, 1.0);
    }

    #[test]
    fn scale_rounds_and_clamps() {
        let d = SimDuration::from_nanos(1_000);
        assert_eq!(d.scale(1.42), SimDuration::from_nanos(1_420));
        assert_eq!(d.scale(-1.0), SimDuration::ZERO);
        assert_eq!(d.scale(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [SimDuration::micros(1), SimDuration::micros(2)]
            .iter()
            .sum();
        assert_eq!(total, SimDuration::micros(3));
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_nanos(500).to_string(), "500ns");
        assert_eq!(SimDuration::micros(42).to_string(), "42.00us");
        assert_eq!(SimDuration::millis(42).to_string(), "42.00ms");
        assert_eq!(SimDuration::secs(42).to_string(), "42.000s");
    }

    #[test]
    #[should_panic(expected = "subtracted a later SimTime")]
    fn instant_subtraction_panics_on_underflow() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }
}
