//! Minimal JSON writer/parser — the workspace's in-repo replacement for
//! `serde`/`serde_json` on the report and export paths.
//!
//! Three pieces:
//!
//! * [`Json`] — a value tree with a compact [`std::fmt::Display`] writer,
//! * [`Json::parse`] — a strict recursive-descent parser (objects, arrays,
//!   strings with escapes, numbers, booleans, null),
//! * [`ToJson`] — the trait report types implement instead of deriving
//!   `serde::Serialize`, with the [`impl_to_json!`](crate::impl_to_json)
//!   macro generating the impl for plain structs.
//!
//! ```
//! use hcc_types::json::{Json, ToJson};
//!
//! let v = Json::parse(r#"{"klo": 6.0, "uvm": true, "tags": ["a", "b"]}"#).unwrap();
//! assert_eq!(v.get("klo").and_then(Json::as_f64), Some(6.0));
//! assert_eq!(42u64.to_json().to_string(), "42");
//! ```

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (serialized without a fraction).
    U64(u64),
    /// A signed integer (serialized without a fraction).
    I64(i64),
    /// A float. Non-finite values serialize as `null` (JSON has no NaN).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into an array; `None` for other variants.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// Numeric view (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (a single value with optional surrounding
    /// whitespace).
    ///
    /// # Errors
    /// Returns [`JsonError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(v) => write!(f, "{v}"),
            Json::I64(v) => write!(f, "{v}"),
            Json::F64(v) => {
                if v.is_finite() {
                    // Keep a fraction so floats re-parse as floats.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                            continue; // hex4 already advanced past digits
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid hex digits"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number '{text}'"),
        })
    }
}

/// Conversion into a [`Json`] tree — the workspace's `Serialize`.
pub trait ToJson {
    /// Builds the JSON value.
    fn to_json(&self) -> Json;

    /// Convenience: serialize to a compact string.
    fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! uint_to_json {
    ($($ty:ty),+) => {
        $(impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::U64(u64::from(*self))
            }
        })+
    };
}
uint_to_json!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}

macro_rules! int_to_json {
    ($($ty:ty),+) => {
        $(impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::I64(i64::from(*self))
            }
        })+
    };
}
int_to_json!(i8, i16, i32, i64);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::F64(f64::from(*self))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Generates a [`ToJson`](crate::json::ToJson) impl for a struct with
/// named, `ToJson` fields — the replacement for `#[derive(Serialize)]`.
///
/// ```
/// struct Point { x: u64, y: u64 }
/// hcc_types::impl_to_json!(Point { x, y });
///
/// use hcc_types::json::ToJson;
/// assert_eq!(Point { x: 1, y: 2 }.to_json_string(), r#"{"x":1,"y":2}"#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    )),+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_compact_json() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("hcc".into())),
            ("count".into(), Json::U64(3)),
            ("ratio".into(), Json::F64(1.42)),
            (
                "flags".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"hcc","count":3,"ratio":1.42,"flags":[true,null]}"#
        );
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::Obj(vec![
            ("a".into(), Json::I64(-7)),
            ("b".into(), Json::F64(2.5)),
            ("s".into(), Json::Str("line\n\"quote\"".into())),
            ("arr".into(), Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("nested".into(), Json::Obj(vec![("x".into(), Json::Null)])),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn parser_handles_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , 2.0 , \"\\u0041\\t\" ] } ").unwrap();
        let arr = v.get("k").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.0));
        assert_eq!(arr[2].as_str(), Some("A\t"));
    }

    #[test]
    fn parser_handles_surrogate_pairs() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integers_keep_full_precision() {
        let big = u64::MAX;
        let v = Json::parse(&Json::U64(big).to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        let neg = Json::parse("-9223372036854775808").unwrap();
        assert_eq!(neg, Json::I64(i64::MIN));
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn to_json_primitives() {
        assert_eq!(42u32.to_json_string(), "42");
        assert_eq!((-3i64).to_json_string(), "-3");
        assert_eq!("hi".to_json_string(), "\"hi\"");
        assert_eq!(vec![1u64, 2].to_json_string(), "[1,2]");
        assert_eq!(Option::<u64>::None.to_json_string(), "null");
        assert_eq!((1u64, 2.0f64).to_json_string(), "[1,2.0]");
    }

    struct Demo {
        id: u64,
        label: String,
    }
    crate::impl_to_json!(Demo { id, label });

    #[test]
    fn struct_macro_emits_ordered_object() {
        let d = Demo {
            id: 9,
            label: "x".into(),
        };
        assert_eq!(d.to_json_string(), r#"{"id":9,"label":"x"}"#);
        let parsed = Json::parse(&d.to_json_string()).unwrap();
        assert_eq!(parsed.get("id").unwrap().as_u64(), Some(9));
    }
}
