//! Stable 64-bit content hashing for cache keys.
//!
//! The experiment engine memoizes simulation results keyed by the *content*
//! of a scenario (workload program + [`crate::CcMode`] + seed + calibration).
//! `std::hash` deliberately randomizes its state per process, so cache keys
//! built on it would not be comparable across runs or printable in reports.
//! [`Fnv64`] is a plain FNV-1a implementation with explicit little-endian
//! field mixing: the same fields always produce the same `u64`, on every
//! platform, in every process.
//!
//! ```
//! use hcc_types::hash::Fnv64;
//!
//! let mut a = Fnv64::new();
//! a.write_u64(7);
//! a.write_str("gemm");
//! let mut b = Fnv64::new();
//! b.write_u64(7);
//! b.write_str("gemm");
//! assert_eq!(a.finish(), b.finish());
//! ```

/// An FNV-1a 64-bit hasher with a stable, platform-independent digest.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub const fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Mixes raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Mixes a `u8`.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Mixes a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Mixes a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Mixes a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Mixes an `f64` via its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Mixes a string, length-prefixed so adjacent strings cannot alias
    /// (`"ab" + "c"` vs `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current digest.
    #[must_use]
    pub const fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// [`std::hash::Hasher`] adapter over [`Fnv64`], so standard collections
/// can use the stable FNV-1a mix instead of SipHash.
///
/// SipHash exists to resist hash-flooding from adversarial keys; the
/// simulators hash their *own* small integer handles (stream ids, pointer
/// values, correlation ids), where FNV's much shorter mix wins on the hot
/// path and the DoS defence buys nothing.
#[derive(Debug, Clone, Default)]
pub struct FnvHasher(Fnv64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0.finish()
    }

    fn write(&mut self, bytes: &[u8]) {
        self.0.write(bytes);
    }
}

/// `BuildHasher` producing [`FnvHasher`]s; the state is empty so every
/// build is free and every process hashes identically.
#[derive(Debug, Clone, Copy, Default)]
pub struct FnvBuildHasher;

impl std::hash::BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

/// `HashMap` keyed through the stable FNV-1a mix.
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

/// `HashSet` keyed through the stable FNV-1a mix.
pub type FnvHashSet<K> = std::collections::HashSet<K, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv1a_vectors() {
        // Published FNV-1a 64 test vectors.
        let digest = |s: &str| {
            let mut h = Fnv64::new();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(digest(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn field_order_and_width_matter() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());

        let mut c = Fnv64::new();
        c.write_u32(1);
        let mut d = Fnv64::new();
        d.write_u64(1);
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn length_prefix_prevents_string_aliasing() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn f64_distinguishes_near_values() {
        let mut a = Fnv64::new();
        a.write_f64(1.0);
        let mut b = Fnv64::new();
        b.write_f64(1.0 + f64::EPSILON);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn std_collections_work_over_fnv() {
        let mut map: FnvHashMap<u64, &str> = FnvHashMap::default();
        map.insert(1, "one");
        map.insert(0x1000, "addr");
        assert_eq!(map.get(&1), Some(&"one"));
        assert_eq!(map.len(), 2);

        let mut set: FnvHashSet<u64> = FnvHashSet::default();
        assert!(set.insert(42));
        assert!(!set.insert(42));
    }

    #[test]
    fn fnv_hasher_matches_fnv64_digest() {
        use std::hash::Hasher as _;
        let mut h = FnvHasher::default();
        h.write(b"foobar");
        let mut reference = Fnv64::new();
        reference.write(b"foobar");
        assert_eq!(h.finish(), reference.finish());
    }
}
