//! # hcc-types
//!
//! Foundation types shared by every crate in the `hcc` workspace: a virtual
//! clock ([`SimTime`], [`SimDuration`]), byte quantities ([`ByteSize`]),
//! transfer rates ([`Bandwidth`]), a deterministic random-number generator
//! ([`rng::Xoshiro256`]), and the calibration tables ([`calib`]) that anchor
//! the simulator to the numbers reported in the ISPASS 2025 paper
//! *"Dissecting Performance Overheads of Confidential Computing on GPU-based
//! Systems"*.
//!
//! Everything in the workspace measures time in **integer nanoseconds of
//! virtual time** — the simulation never consults the wall clock, so a given
//! (workload, configuration, seed) triple always reproduces the same trace.
//!
//! ```
//! use hcc_types::{ByteSize, Bandwidth, SimDuration};
//!
//! let xfer = ByteSize::mib(256);
//! let pcie = Bandwidth::gb_per_s(26.0);
//! let t: SimDuration = pcie.time_for(xfer);
//! assert!(t.as_millis_f64() > 10.0 && t.as_millis_f64() < 11.0);
//! ```

pub mod calib;
pub mod fault;
pub mod hash;
pub mod json;
pub mod mode;
pub mod planes;
pub mod rng;
mod size;
pub mod slo;
pub mod storm;
mod time;

pub use fault::{FaultCounts, FaultInjector, FaultPlan, FaultSite, Recovery, RecoveryPolicy};
pub use mode::{CcMode, CopyKind, CpuModel, HostMemKind, MemSpace};
pub use planes::Planes;
pub use size::{Bandwidth, ByteSize};
pub use slo::{burn_rate_milli, BurnPair};
pub use storm::{LatencyBudget, StormIntensity, StormProfile, StormSchedule, StormWindow};
pub use time::{SimDuration, SimTime};

/// Result alias used by fallible APIs across the workspace foundation.
pub type Result<T, E = TypeError> = std::result::Result<T, E>;

/// Errors produced by foundation-type constructors and conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TypeError {
    /// A bandwidth of zero or a non-finite rate was supplied where a
    /// positive, finite rate is required.
    InvalidBandwidth(String),
    /// Arithmetic on the virtual clock overflowed `u64` nanoseconds.
    ClockOverflow,
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeError::InvalidBandwidth(msg) => write!(f, "invalid bandwidth: {msg}"),
            TypeError::ClockOverflow => write!(f, "virtual clock arithmetic overflowed"),
        }
    }
}

impl std::error::Error for TypeError {}
