//! Byte quantities and transfer rates.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::time::SimDuration;
use crate::TypeError;

/// A number of bytes.
///
/// Sizes use binary multiples for constructors (`kib`, `mib`, `gib`) because
/// allocation and page arithmetic are binary, while [`Bandwidth`] uses
/// decimal GB/s because that is how the paper (and PCIe marketing) reports
/// rates.
///
/// ```
/// use hcc_types::ByteSize;
/// assert_eq!(ByteSize::mib(1).as_u64(), 1024 * 1024);
/// assert_eq!(ByteSize::mib(2) / ByteSize::kib(64), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size of `n` bytes.
    pub const fn bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// Creates a size of `n` KiB (1024 bytes).
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * 1024)
    }

    /// Creates a size of `n` MiB.
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }

    /// Creates a size of `n` GiB.
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024 * 1024)
    }

    /// Size in bytes.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Size in bytes as `f64` (for rate arithmetic).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Size in MiB as a float (for reporting).
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Size in decimal gigabytes as a float (for bandwidth reporting).
    pub fn as_gb_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if the size is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Number of `page`-sized pages needed to cover this size (ceiling).
    ///
    /// # Panics
    /// Panics if `page` is zero.
    pub fn pages(self, page: ByteSize) -> u64 {
        assert!(page.0 > 0, "page size must be non-zero");
        self.0.div_ceil(page.0)
    }

    /// Rounds up to a multiple of `align`.
    ///
    /// # Panics
    /// Panics if `align` is zero.
    pub fn align_up(self, align: ByteSize) -> ByteSize {
        assert!(align.0 > 0, "alignment must be non-zero");
        ByteSize(self.0.div_ceil(align.0) * align.0)
    }

    /// The smaller of two sizes.
    pub fn min(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.min(other.0))
    }

    /// The larger of two sizes.
    pub fn max(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.max(other.0))
    }

    /// Difference that saturates at zero.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b < 1024 {
            write!(f, "{b}B")
        } else if b < 1024 * 1024 {
            write!(f, "{:.1}KiB", b as f64 / 1024.0)
        } else if b < 1024 * 1024 * 1024 {
            write!(f, "{:.1}MiB", b as f64 / (1024.0 * 1024.0))
        } else {
            write!(f, "{:.2}GiB", b as f64 / (1024.0 * 1024.0 * 1024.0))
        }
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_add(rhs.0).expect("byte size overflow"))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    /// # Panics
    /// Panics on underflow; use [`ByteSize::saturating_sub`] otherwise.
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_sub(rhs.0).expect("byte size underflow"))
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0.checked_mul(rhs).expect("byte size overflow"))
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    fn div(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 / rhs)
    }
}

impl Div<ByteSize> for ByteSize {
    type Output = u64;
    /// Integer ratio of two sizes (floor).
    fn div(self, rhs: ByteSize) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

/// A data-transfer or processing rate.
///
/// Internally stored as bytes per second (`f64`). Construct with decimal
/// [`Bandwidth::gb_per_s`] or [`Bandwidth::mb_per_s`], matching the units
/// used throughout the paper's figures.
///
/// ```
/// use hcc_types::{Bandwidth, ByteSize};
/// let gcm = Bandwidth::gb_per_s(3.36); // AES-GCM on EMR, Fig. 4b
/// let t = gcm.time_for(ByteSize::gib(1));
/// assert!((t.as_secs_f64() - 1.0737 / 3.36).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a rate from decimal gigabytes per second.
    ///
    /// # Panics
    /// Panics if `gb` is not finite and positive; use
    /// [`Bandwidth::try_gb_per_s`] for a fallible constructor.
    pub fn gb_per_s(gb: f64) -> Self {
        Self::try_gb_per_s(gb).expect("bandwidth must be finite and positive")
    }

    /// Fallible variant of [`Bandwidth::gb_per_s`].
    ///
    /// # Errors
    /// Returns [`TypeError::InvalidBandwidth`] when `gb` is zero, negative,
    /// or not finite.
    pub fn try_gb_per_s(gb: f64) -> Result<Self, TypeError> {
        if gb.is_finite() && gb > 0.0 {
            Ok(Bandwidth(gb * 1e9))
        } else {
            Err(TypeError::InvalidBandwidth(format!("{gb} GB/s")))
        }
    }

    /// Creates a rate from decimal megabytes per second.
    pub fn mb_per_s(mb: f64) -> Self {
        Self::gb_per_s(mb / 1e3)
    }

    /// Rate in bytes per second.
    pub fn bytes_per_s(self) -> f64 {
        self.0
    }

    /// Rate in decimal GB/s (the paper's reporting unit).
    pub fn as_gb_per_s(self) -> f64 {
        self.0 / 1e9
    }

    /// Time to move `size` bytes at this rate.
    pub fn time_for(self, size: ByteSize) -> SimDuration {
        SimDuration::from_secs_f64(size.as_f64() / self.0)
    }

    /// Effective rate observed when moving `size` bytes in `elapsed` time.
    /// Returns `None` when `elapsed` is zero.
    pub fn observed(size: ByteSize, elapsed: SimDuration) -> Option<Bandwidth> {
        if elapsed.is_zero() || size.is_zero() {
            return None;
        }
        Some(Bandwidth(size.as_f64() / elapsed.as_secs_f64()))
    }

    /// Scales the rate by a positive factor (e.g. parallel crypto workers).
    ///
    /// # Panics
    /// Panics if `factor` is not finite and positive.
    pub fn scale(self, factor: f64) -> Bandwidth {
        assert!(
            factor.is_finite() && factor > 0.0,
            "bandwidth scale factor must be finite and positive"
        );
        Bandwidth(self.0 * factor)
    }

    /// Harmonic composition of serial pipeline stages: the effective rate of
    /// performing each stage in sequence on the same bytes.
    ///
    /// This is how the CC transfer path composes encryption, the bounce
    /// buffer copy, and DMA (Sec. VI-A of the paper).
    ///
    /// # Panics
    /// Panics if `stages` is empty.
    pub fn serial_pipeline(stages: &[Bandwidth]) -> Bandwidth {
        assert!(!stages.is_empty(), "pipeline must have at least one stage");
        let inv: f64 = stages.iter().map(|b| 1.0 / b.0).sum();
        Bandwidth(1.0 / inv)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gb = self.as_gb_per_s();
        if gb >= 1.0 {
            write!(f, "{gb:.2}GB/s")
        } else {
            write!(f, "{:.2}MB/s", gb * 1e3)
        }
    }
}

impl crate::json::ToJson for ByteSize {
    /// Serializes as the raw byte count.
    fn to_json(&self) -> crate::json::Json {
        crate::json::Json::U64(self.as_u64())
    }
}

impl crate::json::ToJson for Bandwidth {
    /// Serializes as bytes per second.
    fn to_json(&self) -> crate::json::Json {
        crate::json::Json::F64(self.bytes_per_s())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_constructors() {
        assert_eq!(ByteSize::kib(1).as_u64(), 1024);
        assert_eq!(ByteSize::mib(1).as_u64(), 1 << 20);
        assert_eq!(ByteSize::gib(1).as_u64(), 1 << 30);
    }

    #[test]
    fn page_math() {
        let page = ByteSize::kib(64);
        assert_eq!(ByteSize::bytes(1).pages(page), 1);
        assert_eq!(ByteSize::kib(64).pages(page), 1);
        assert_eq!(ByteSize::bytes(64 * 1024 + 1).pages(page), 2);
        assert_eq!(ByteSize::ZERO.pages(page), 0);
        assert_eq!(ByteSize::bytes(100).align_up(page), page);
    }

    #[test]
    fn bandwidth_time_for() {
        let bw = Bandwidth::gb_per_s(1.0);
        assert_eq!(
            bw.time_for(ByteSize::bytes(1_000_000_000)),
            SimDuration::secs(1)
        );
        assert_eq!(bw.time_for(ByteSize::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn bandwidth_observed_roundtrips() {
        let bw = Bandwidth::gb_per_s(26.0);
        let size = ByteSize::mib(512);
        let t = bw.time_for(size);
        let back = Bandwidth::observed(size, t).unwrap();
        assert!((back.as_gb_per_s() - 26.0).abs() < 0.01);
        assert!(Bandwidth::observed(size, SimDuration::ZERO).is_none());
    }

    #[test]
    fn serial_pipeline_matches_paper_composition() {
        // Crypto 3.36 GB/s + staging 80 GB/s + DMA 52 GB/s should land near
        // the paper's observed 3.03 GB/s CC peak (Sec. VI-A).
        let eff = Bandwidth::serial_pipeline(&[
            Bandwidth::gb_per_s(3.36),
            Bandwidth::gb_per_s(80.0),
            Bandwidth::gb_per_s(52.0),
        ]);
        assert!((eff.as_gb_per_s() - 3.03).abs() < 0.02, "got {eff}");
    }

    #[test]
    fn invalid_bandwidth_rejected() {
        assert!(Bandwidth::try_gb_per_s(0.0).is_err());
        assert!(Bandwidth::try_gb_per_s(-1.0).is_err());
        assert!(Bandwidth::try_gb_per_s(f64::NAN).is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ByteSize::bytes(12).to_string(), "12B");
        assert_eq!(ByteSize::mib(256).to_string(), "256.0MiB");
        assert_eq!(Bandwidth::gb_per_s(3.36).to_string(), "3.36GB/s");
        assert_eq!(Bandwidth::mb_per_s(500.0).to_string(), "500.00MB/s");
    }
}
