//! Calibration tables anchoring the simulator to the paper's measurements.
//!
//! Every constant here cites the paper section or figure it comes from.
//! Numbers the paper states directly (e.g. the 3.36 GB/s AES-GCM ceiling,
//! the +470 % `tdx_hypercall` latency) are used verbatim; remaining service
//! times are chosen so the *derived* quantities land on the paper's reported
//! ratios (e.g. mean KLO ×1.42, mean copy ×5.80). The [`paper`] submodule
//! records the published target values so tests can assert reproduction
//! quality against them.

use crate::{Bandwidth, ByteSize, CcMode, SimDuration};

/// The full calibration bundle consumed by the simulators.
///
/// `Calibration::default()` is the paper configuration (Table I hardware,
/// Sec. VI measurements). Ablation benches mutate individual fields.
#[derive(Debug, Clone, Default)]
pub struct Calibration {
    /// PCIe / host-memory transfer path rates.
    pub pcie: PcieCalib,
    /// TDX transition and memory-conversion costs.
    pub tdx: TdxCalib,
    /// CUDA memory-management service times (Fig. 6).
    pub alloc: AllocCalib,
    /// Kernel-launch path service times (Fig. 7/8/11/12).
    pub launch: LaunchCalib,
    /// GPU engine service parameters.
    pub gpu: GpuCalib,
    /// Unified-virtual-memory fault/migration parameters (Fig. 9).
    pub uvm: UvmCalib,
}

impl Calibration {
    /// The paper's configuration (identical to `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Stable content fingerprint over every calibration constant.
    ///
    /// Hashes the canonical JSON rendering of the bundle: floats print in
    /// shortest-roundtrip form, so any perturbation of any constant changes
    /// the fingerprint. Used by `SimConfig::content_hash` so scenario cache
    /// keys cannot alias two different calibrations.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        use crate::json::ToJson;
        let mut h = crate::hash::Fnv64::new();
        h.write_str(&self.to_json_string());
        h.finish()
    }
}

/// PCIe and host staging-path rates (paper Fig. 4a, Sec. VI-A).
#[derive(Debug, Clone)]
pub struct PcieCalib {
    /// Peak pinned-memory DMA rate, host→device, non-CC. PCIe 5.0 ×16
    /// practical ceiling on the H100 NVL testbed.
    pub pinned_h2d: Bandwidth,
    /// Peak pinned-memory DMA rate, device→host, non-CC (slightly lower in
    /// practice).
    pub pinned_d2h: Bandwidth,
    /// Host `memcpy` rate for the extra staging copy pageable transfers
    /// perform.
    pub host_staging: Bandwidth,
    /// Rate of the copy from TD-private memory into the (already
    /// converted) swiotlb bounce buffer under CC. Streamed kernel memcpy,
    /// faster than the pageable staging path.
    pub bounce_copy: Bandwidth,
    /// On-device D2D copy rate (HBM3).
    pub d2d: Bandwidth,
    /// Fixed per-transfer DMA setup latency; dominates tiny transfers and
    /// produces the bandwidth ramp of Fig. 4a.
    pub dma_setup: SimDuration,
    /// Extra per-transfer driver latency for pageable copies (staging
    /// buffer management).
    pub pageable_setup: SimDuration,
    /// GPU-side AES-GCM rate for CC transfers (copy-engine assisted
    /// decrypt/encrypt; faster than the CPU side, so the CPU is the
    /// bottleneck — Sec. VI-A).
    pub gpu_crypto: Bandwidth,
    /// Maximum bytes encrypted/staged per bounce-buffer round trip.
    pub bounce_chunk: ByteSize,
    /// Fixed cost per CC transfer beyond crypto/DMA (context switches into
    /// the TDX module and back, Sec. VI-A step list).
    pub cc_transfer_setup: SimDuration,
}

impl Default for PcieCalib {
    fn default() -> Self {
        PcieCalib {
            pinned_h2d: Bandwidth::gb_per_s(52.0),
            pinned_d2h: Bandwidth::gb_per_s(46.0),
            host_staging: Bandwidth::gb_per_s(22.0),
            bounce_copy: Bandwidth::gb_per_s(80.0),
            d2d: Bandwidth::gb_per_s(1300.0),
            dma_setup: SimDuration::from_micros_f64(8.0),
            pageable_setup: SimDuration::from_micros_f64(4.0),
            gpu_crypto: Bandwidth::gb_per_s(200.0),
            bounce_chunk: ByteSize::mib(4),
            cc_transfer_setup: SimDuration::from_micros_f64(6.0),
        }
    }
}

/// Intel TDX transition and page-conversion costs (Sec. II-A, Fig. 8).
#[derive(Debug, Clone)]
pub struct TdxCalib {
    /// Latency of a plain VM exit / vmcall in a regular VM.
    pub vmexit: SimDuration,
    /// `tdx_hypercall` latency multiplier over a plain vmcall. The paper
    /// cites hypercall evaluations reporting "over 470 %" added latency
    /// (Sec. VI-B), i.e. ×5.7.
    pub hypercall_mult: f64,
    /// Latency of a seamcall into the TDX module.
    pub seamcall: SimDuration,
    /// `set_memory_decrypted` cost per 4 KiB page converted private→shared
    /// (EPT manipulation + TLB shootdown, Fig. 8's `dma_direct_alloc` path).
    pub page_convert: SimDuration,
    /// Size of the pre-converted swiotlb bounce pool; staging within the
    /// pool avoids per-copy page conversion.
    pub bounce_pool: ByteSize,
    /// Small bookkeeping cost to reserve a bounce slot from the pool.
    pub bounce_reserve: SimDuration,
}

impl TdxCalib {
    /// Effective `tdx_hypercall` latency (vmexit × multiplier).
    pub fn hypercall(&self) -> SimDuration {
        self.vmexit.scale(self.hypercall_mult)
    }

    /// Extra latency a TD pays per hypercall compared to a regular VM.
    pub fn hypercall_extra(&self) -> SimDuration {
        self.hypercall().saturating_sub(self.vmexit)
    }
}

impl Default for TdxCalib {
    fn default() -> Self {
        TdxCalib {
            vmexit: SimDuration::from_micros_f64(0.9),
            hypercall_mult: 5.7,
            seamcall: SimDuration::from_micros_f64(3.5),
            page_convert: SimDuration::from_micros_f64(1.1),
            bounce_pool: ByteSize::mib(64),
            bounce_reserve: SimDuration::from_nanos(220),
        }
    }
}

/// Memory-management service times (paper Fig. 6 and Sec. VI-A).
///
/// Base costs are absolute; CC costs are expressed as multipliers the paper
/// reports (API-level means): `cudaMalloc` ×5.67, `cudaMallocHost` ×5.72,
/// `cudaFree` ×10.54, `cudaMallocManaged` ×5.43, managed free ×3.35.
#[derive(Debug, Clone)]
pub struct AllocCalib {
    /// `cudaMalloc` fixed cost, non-CC.
    pub dmalloc_base: SimDuration,
    /// `cudaMalloc` additional cost per GiB reserved.
    pub dmalloc_per_gib: SimDuration,
    /// `cudaMallocHost` fixed cost, non-CC (page-locking setup).
    pub hmalloc_base: SimDuration,
    /// `cudaMallocHost` cost per GiB pinned, non-CC.
    pub hmalloc_per_gib: SimDuration,
    /// `cudaFree`/`cudaFreeHost` fixed cost, non-CC.
    pub free_base: SimDuration,
    /// `cudaMallocManaged` cost relative to `cudaMalloc` (non-CC). The
    /// paper reports UVM allocation at 0.51× the non-UVM baseline (lazy
    /// backing).
    pub managed_alloc_factor: f64,
    /// Managed `cudaFree` cost relative to plain free (non-CC): ×3.13.
    pub managed_free_factor: f64,
    /// CC multiplier for `cudaMalloc`: ×5.67.
    pub cc_dmalloc_mult: f64,
    /// CC multiplier for `cudaMallocHost`: ×5.72.
    pub cc_hmalloc_mult: f64,
    /// CC multiplier for `cudaFree`: ×10.54.
    pub cc_free_mult: f64,
    /// CC multiplier for `cudaMallocManaged`: ×5.43.
    pub cc_managed_alloc_mult: f64,
    /// CC multiplier for managed free: ×3.35 (API level). App-level UVM
    /// deallocation reaches ×18.20 versus the non-CC non-UVM baseline
    /// because the managed factor compounds with page teardown.
    pub cc_managed_free_mult: f64,
    /// Relative jitter applied to every management call.
    pub jitter_frac: f64,
}

impl Default for AllocCalib {
    fn default() -> Self {
        AllocCalib {
            dmalloc_base: SimDuration::from_micros_f64(105.0),
            dmalloc_per_gib: SimDuration::from_micros_f64(38.0),
            hmalloc_base: SimDuration::from_micros_f64(72.0),
            hmalloc_per_gib: SimDuration::from_micros_f64(185_000.0),
            free_base: SimDuration::from_micros_f64(92.0),
            managed_alloc_factor: 0.51,
            managed_free_factor: 3.13,
            cc_dmalloc_mult: 5.67,
            cc_hmalloc_mult: 5.72,
            cc_free_mult: 10.54,
            cc_managed_alloc_mult: 5.43,
            cc_managed_free_mult: 3.35,
            jitter_frac: 0.06,
        }
    }
}

/// Kernel-launch path calibration (paper Sec. VI-B, Fig. 7/8/11/12a).
#[derive(Debug, Clone)]
pub struct LaunchCalib {
    /// Mean driver-side cost of `cudaLaunchKernel`, non-CC, steady state.
    pub klo_base: SimDuration,
    /// Log-normal shape of KLO jitter (Fig. 11a spread).
    pub klo_sigma: f64,
    /// Probability that a launch's doorbell MMIO write traps to the host
    /// (a `#VE` → `tdx_hypercall` under CC). Driver write-combining batches
    /// doorbells, so not every launch exits.
    pub doorbell_trap_prob: f64,
    /// Extra TDX hypercalls on a *first* launch of a kernel (lazy driver
    /// init touching device state — Fig. 8).
    pub first_launch_hypercalls: u32,
    /// Driver fixed extra work on the first launch of each kernel (lazy
    /// function setup; the cubin itself is uploaded at module-load time,
    /// outside the launch path), non-CC.
    pub first_launch_extra: SimDuration,
    /// CC multiplier on the first-launch extra work.
    pub cc_first_mult: f64,
    /// Probability that a CC first launch additionally hits a page-
    /// conversion storm (bounce allocations for launch metadata) — the
    /// source of Fig. 7a outliers like dwt2d's ×5.31.
    pub cc_first_spike_prob: f64,
    /// Magnitude range of that storm, microseconds.
    pub cc_first_spike_us: (f64, f64),
    /// Probability of a heavy-tail KLO spike (driver lock contention).
    pub spike_prob: f64,
    /// Spike magnitude range (multiplier on `klo_base`).
    pub spike_range: (f64, f64),
    /// Host-side work between consecutive launches (runtime bookkeeping,
    /// app loop body). Measured as LQT by the event analysis.
    pub inter_launch_gap: SimDuration,
    /// CC multiplier on the inter-launch gap (TD scheduling/syscall tax):
    /// tuned so mean LQT lands at the paper's ×1.43.
    pub cc_gap_mult: f64,
    /// Log-normal shape of the gap jitter — wide, so apps with only a
    /// handful of launches show the unstable LQT ratios of Fig. 7b.
    pub gap_sigma: f64,
}

impl Default for LaunchCalib {
    fn default() -> Self {
        LaunchCalib {
            klo_base: SimDuration::from_micros_f64(6.0),
            klo_sigma: 0.22,
            doorbell_trap_prob: 0.60,
            first_launch_hypercalls: 2,
            first_launch_extra: SimDuration::from_micros_f64(58.0),
            cc_first_mult: 1.5,
            cc_first_spike_prob: 0.08,
            cc_first_spike_us: (80.0, 260.0),
            spike_prob: 0.012,
            spike_range: (4.0, 18.0),
            inter_launch_gap: SimDuration::from_micros_f64(1.8),
            cc_gap_mult: 1.45,
            gap_sigma: 0.5,
        }
    }
}

/// GPU engine service parameters (Sec. II-A architecture).
#[derive(Debug, Clone)]
pub struct GpuCalib {
    /// Depth of a channel's command ring; a full ring blocks the next
    /// launch on the host — the source of LQT.
    pub ring_depth: usize,
    /// Command-processor service time per command, non-CC.
    pub cp_service: SimDuration,
    /// CC multiplier on command-processor service (encrypted/authenticated
    /// command submission path): tuned so mean LQT lands at the paper's
    /// ×1.43.
    pub cc_cp_service_mult: f64,
    /// Dispatch latency from command-processor to compute engine (KQT floor
    /// for uncontended kernels), non-CC.
    pub dispatch: SimDuration,
    /// CC multiplier on dispatch latency: tuned so the CP-service +
    /// dispatch path (the KQT floor) scales by the paper's ×2.32 for
    /// low-launch-count apps.
    pub cc_dispatch_mult: f64,
    /// Concurrent kernel slots on the compute engine (H100 runs many
    /// kernels concurrently; the overlap study only needs "enough").
    pub compute_slots: usize,
    /// Multiplier on kernel execution time under CC for non-UVM kernels.
    /// The paper measures +0.48 % on average (Observation 5).
    pub cc_ket_factor: f64,
    /// Relative jitter on kernel execution time.
    pub ket_jitter: f64,
}

impl Default for GpuCalib {
    fn default() -> Self {
        GpuCalib {
            ring_depth: 32,
            cp_service: SimDuration::from_micros_f64(2.0),
            cc_cp_service_mult: 1.45,
            dispatch: SimDuration::from_micros_f64(1.8),
            cc_dispatch_mult: 3.3,
            compute_slots: 16,
            cc_ket_factor: 1.0048,
            ket_jitter: 0.015,
        }
    }
}

/// Unified-virtual-memory calibration (Sec. II-B, Fig. 9).
#[derive(Debug, Clone)]
pub struct UvmCalib {
    /// UVM migration granule (NVIDIA "vablock" style batch unit).
    pub page: ByteSize,
    /// Pages migrated per far-fault service batch (non-CC).
    pub batch_pages: u64,
    /// Pages per demand batch under CC: encrypted paging stages through
    /// small bounce slots, shrinking the effective batch.
    pub cc_batch_pages: u64,
    /// GPU-fault round trip to the CPU UVM driver, non-CC. Literature
    /// (Sec. II-B) reports 20–50 µs; we centre at 25 µs.
    pub fault_latency: SimDuration,
    /// Extra hypercalls per fault batch under CC (driver↔host mediation).
    pub cc_fault_hypercalls: u32,
    /// Migration bandwidth, non-CC (pinned-class DMA).
    pub migrate_bw: Bandwidth,
    /// Migration bandwidth under CC — the *encrypted paging* path
    /// (software AES-GCM per page batch).
    pub cc_migrate_bw: Bandwidth,
    /// Fixed per-batch staging overhead under CC (bounce setup).
    pub cc_batch_overhead: SimDuration,
    /// Whether the tree prefetcher is enabled (ablation hook).
    pub prefetch: bool,
    /// Fraction of faults the prefetcher converts into bulk transfers when
    /// access is sequential.
    pub prefetch_hit: f64,
}

impl Default for UvmCalib {
    fn default() -> Self {
        UvmCalib {
            page: ByteSize::kib(64),
            batch_pages: 32,
            cc_batch_pages: 8,
            fault_latency: SimDuration::from_micros_f64(25.0),
            cc_fault_hypercalls: 2,
            migrate_bw: Bandwidth::gb_per_s(24.0),
            cc_migrate_bw: Bandwidth::gb_per_s(0.9),
            cc_batch_overhead: SimDuration::from_micros_f64(60.0),
            prefetch: true,
            prefetch_hit: 0.55,
        }
    }
}

/// Picks the command-processor service time for a mode.
pub fn cp_service(gpu: &GpuCalib, cc: CcMode) -> SimDuration {
    match cc {
        CcMode::Off => gpu.cp_service,
        CcMode::On => gpu.cp_service.scale(gpu.cc_cp_service_mult),
    }
}

/// Picks the engine dispatch latency for a mode.
pub fn dispatch_latency(gpu: &GpuCalib, cc: CcMode) -> SimDuration {
    match cc {
        CcMode::Off => gpu.dispatch,
        CcMode::On => gpu.dispatch.scale(gpu.cc_dispatch_mult),
    }
}

/// The evaluation platform of Table I, for the `table1_setup` harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    /// CPU description.
    pub cpu: &'static str,
    /// Main-memory description.
    pub memory: &'static str,
    /// TME-MK configuration.
    pub tme_mk: &'static str,
    /// Storage device.
    pub storage: &'static str,
    /// Chassis / platform.
    pub system: &'static str,
    /// Guest operating system.
    pub os: &'static str,
    /// Hypervisor.
    pub hypervisor: &'static str,
    /// TDX software stack version.
    pub tdx_tools: &'static str,
    /// GPU and CUDA stack.
    pub gpu: &'static str,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            cpu: "2x 5th Gen Intel Xeon 6530 Gold @2.1GHz, 32 cores",
            memory: "16x 64GB DDR5 4800MHz (1TB)",
            tme_mk: "Auto bypass enabled",
            storage: "Micron 5400 PRO 960GB, SATA",
            system: "Supermicro SYS-421GE-TNRT3 (PCIe 5.0)",
            os: "Ubuntu 22.04.5 LTS (Linux 6.2.0, tdx patched)",
            hypervisor: "QEMU 7.2.0 (tdx patched)",
            tdx_tools: "TDX 1.5 (tag 2023ww15)",
            gpu: "NVIDIA H100 NVL, 94GB HBM3, PCIe 5.0 x16; CUDA 12.4, Driver 550.127.05",
        }
    }
}

impl std::fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "TABLE I: Confidential Computing System Setup")?;
        writeln!(f, "  {:<11} {}", "CPU", self.cpu)?;
        writeln!(f, "  {:<11} {}", "Memory", self.memory)?;
        writeln!(f, "  {:<11} {}", "TME-MK", self.tme_mk)?;
        writeln!(f, "  {:<11} {}", "Storage", self.storage)?;
        writeln!(f, "  {:<11} {}", "System", self.system)?;
        writeln!(f, "  {:<11} {}", "OS", self.os)?;
        writeln!(f, "  {:<11} {}", "Hypervisor", self.hypervisor)?;
        writeln!(f, "  {:<11} {}", "TDX Tools", self.tdx_tools)?;
        write!(f, "  {:<11} {}", "GPU", self.gpu)
    }
}

/// Published target values from the paper, used by the test suite to score
/// reproduction quality (shape, not absolute nanoseconds).
pub mod paper {
    /// Peak CC pinned H2D bandwidth, GB/s (Sec. VI-A).
    pub const CC_PEAK_H2D_GBS: f64 = 3.03;
    /// Single-core AES-GCM ceiling on EMR, GB/s (Fig. 4b).
    pub const AES_GCM_EMR_GBS: f64 = 3.36;
    /// GHASH ceiling on EMR, GB/s (Fig. 4b).
    pub const GHASH_EMR_GBS: f64 = 8.9;
    /// Mean copy slowdown under CC (Observation 3).
    pub const COPY_SLOWDOWN_MEAN: f64 = 5.80;
    /// Max copy slowdown under CC — 2dconv (Observation 3).
    pub const COPY_SLOWDOWN_MAX: f64 = 19.69;
    /// Min copy slowdown under CC — cnn (Sec. VI-A).
    pub const COPY_SLOWDOWN_MIN: f64 = 1.17;
    /// `cudaMalloc` CC slowdown (Sec. VI-A).
    pub const DMALLOC_SLOWDOWN: f64 = 5.67;
    /// `cudaMallocHost` CC slowdown.
    pub const HMALLOC_SLOWDOWN: f64 = 5.72;
    /// `cudaFree` CC slowdown.
    pub const FREE_SLOWDOWN: f64 = 10.54;
    /// `cudaMallocManaged` CC slowdown.
    pub const MANAGED_ALLOC_SLOWDOWN: f64 = 5.43;
    /// Managed free CC slowdown.
    pub const MANAGED_FREE_SLOWDOWN: f64 = 3.35;
    /// Mean KLO slowdown under CC (Observation 4).
    pub const KLO_SLOWDOWN_MEAN: f64 = 1.42;
    /// Max KLO slowdown — dwt2d (Fig. 7a).
    pub const KLO_SLOWDOWN_MAX: f64 = 5.31;
    /// Mean LQT slowdown under CC (Observation 4).
    pub const LQT_SLOWDOWN_MEAN: f64 = 1.43;
    /// Mean KQT slowdown under CC (Observation 4).
    pub const KQT_SLOWDOWN_MEAN: f64 = 2.32;
    /// Mean non-UVM KET change under CC (Observation 5), percent.
    pub const KET_NONUVM_DELTA_PCT: f64 = 0.48;
    /// Mean UVM slowdown without CC (Sec. VI-B).
    pub const UVM_BASE_SLOWDOWN: f64 = 5.29;
    /// Mean UVM KET slowdown under CC (Observation 5).
    pub const UVM_CC_SLOWDOWN_MEAN: f64 = 188.87;
    /// `tdx_hypercall` latency increase (Sec. VI-B), percent.
    pub const HYPERCALL_INCREASE_PCT: f64 = 470.0;
    /// CNN: mean throughput drop at batch 64 under CC, percent (Sec. VII-B).
    pub const CNN_B64_TPUT_DROP_PCT: f64 = 24.0;
    /// CNN: mean throughput drop at batch 1024 under CC, percent.
    pub const CNN_B1024_TPUT_DROP_PCT: f64 = 7.3;
    /// CNN: mean FP16 training-time reduction at batch 1024, percent.
    pub const CNN_FP16_TIME_CUT_PCT: f64 = 27.7;
}

crate::impl_to_json!(Calibration {
    pcie,
    tdx,
    alloc,
    launch,
    gpu,
    uvm
});
crate::impl_to_json!(PcieCalib {
    pinned_h2d,
    pinned_d2h,
    host_staging,
    bounce_copy,
    d2d,
    dma_setup,
    pageable_setup,
    gpu_crypto,
    bounce_chunk,
    cc_transfer_setup,
});
crate::impl_to_json!(TdxCalib {
    vmexit,
    hypercall_mult,
    seamcall,
    page_convert,
    bounce_pool,
    bounce_reserve,
});
crate::impl_to_json!(AllocCalib {
    dmalloc_base,
    dmalloc_per_gib,
    hmalloc_base,
    hmalloc_per_gib,
    free_base,
    managed_alloc_factor,
    managed_free_factor,
    cc_dmalloc_mult,
    cc_hmalloc_mult,
    cc_free_mult,
    cc_managed_alloc_mult,
    cc_managed_free_mult,
    jitter_frac,
});
crate::impl_to_json!(LaunchCalib {
    klo_base,
    klo_sigma,
    doorbell_trap_prob,
    first_launch_hypercalls,
    first_launch_extra,
    cc_first_mult,
    cc_first_spike_prob,
    cc_first_spike_us,
    spike_prob,
    spike_range,
    inter_launch_gap,
    cc_gap_mult,
    gap_sigma,
});
crate::impl_to_json!(GpuCalib {
    ring_depth,
    cp_service,
    cc_cp_service_mult,
    dispatch,
    cc_dispatch_mult,
    compute_slots,
    cc_ket_factor,
    ket_jitter,
});
crate::impl_to_json!(UvmCalib {
    page,
    batch_pages,
    cc_batch_pages,
    fault_latency,
    cc_fault_hypercalls,
    migrate_bw,
    cc_migrate_bw,
    cc_batch_overhead,
    prefetch,
    prefetch_hit,
});
crate::impl_to_json!(SystemConfig {
    cpu,
    memory,
    tme_mk,
    storage,
    system,
    os,
    hypervisor,
    tdx_tools,
    gpu,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercall_matches_published_increase() {
        let tdx = TdxCalib::default();
        let increase = (tdx.hypercall() / tdx.vmexit - 1.0) * 100.0;
        assert!(
            (increase - paper::HYPERCALL_INCREASE_PCT).abs() < 1.0,
            "{increase}%"
        );
    }

    #[test]
    fn cc_transfer_pipeline_lands_near_published_peak() {
        let p = PcieCalib::default();
        let eff = Bandwidth::serial_pipeline(&[
            Bandwidth::gb_per_s(paper::AES_GCM_EMR_GBS),
            p.bounce_copy,
            p.pinned_h2d,
        ]);
        // The composed path must stay below the crypto ceiling but close to
        // the published 3.03 GB/s.
        assert!(eff.as_gb_per_s() < paper::AES_GCM_EMR_GBS);
        assert!(
            (eff.as_gb_per_s() - paper::CC_PEAK_H2D_GBS).abs() < 0.25,
            "{eff}"
        );
    }

    #[test]
    fn mode_selected_services_scale() {
        let g = GpuCalib::default();
        assert!(cp_service(&g, CcMode::On) > cp_service(&g, CcMode::Off));
        assert!(dispatch_latency(&g, CcMode::On) > dispatch_latency(&g, CcMode::Off));
        // KQT floor = CP service + dispatch; its CC/base ratio matches
        // the paper's mean KQT amplification.
        let kqt_cc = cp_service(&g, CcMode::On) + dispatch_latency(&g, CcMode::On);
        let kqt_base = cp_service(&g, CcMode::Off) + dispatch_latency(&g, CcMode::Off);
        assert!((kqt_cc / kqt_base - paper::KQT_SLOWDOWN_MEAN).abs() < 0.1);
    }

    #[test]
    fn table1_display_contains_key_hardware() {
        let cfg = SystemConfig::default();
        let text = cfg.to_string();
        assert!(text.contains("H100 NVL"));
        assert!(text.contains("Xeon 6530"));
        assert!(text.contains("QEMU 7.2.0"));
    }

    #[test]
    fn fingerprint_tracks_every_constant() {
        let base = Calibration::paper();
        assert_eq!(base.fingerprint(), base.clone().fingerprint());

        let mut tweaked = Calibration::paper();
        tweaked.tdx.hypercall_mult *= 1.25;
        assert_ne!(base.fingerprint(), tweaked.fingerprint());

        let mut tweaked = Calibration::paper();
        tweaked.uvm.prefetch = !tweaked.uvm.prefetch;
        assert_ne!(base.fingerprint(), tweaked.fingerprint());

        let mut tweaked = Calibration::paper();
        tweaked.launch.klo_base = tweaked.launch.klo_base + SimDuration::from_nanos(1);
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
    }

    #[test]
    fn default_calibration_is_debuggable_and_cloneable() {
        let calib = Calibration::default();
        let clone = calib.clone();
        let repr = format!("{clone:?}");
        assert!(repr.contains("PcieCalib"));
        assert!(repr.contains("UvmCalib"));
    }
}
