//! Deterministic fault injection for the CC data path.
//!
//! A [`FaultPlan`] names the sites where transient faults may strike and
//! the per-site probability that a guarded operation fails; a
//! [`RecoveryPolicy`] says how the runtime answers. Both live on the
//! simulation config and are folded into its content hash, so memoized
//! results remain sound. The [`FaultInjector`] draws from its *own*
//! [`Xoshiro256`] stream (derived from the plan seed and the config seed,
//! never from the context's jitter RNG), and takes **zero draws** for a
//! site whose rate is 0.0 — an empty plan therefore leaves the no-fault
//! simulation bit-for-bit unchanged.

use crate::rng::Xoshiro256;
use crate::{ByteSize, SimDuration};

/// A named point in the CC data path where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// AES-GCM auth-tag verification failure on host→device staging.
    GcmTagH2D,
    /// AES-GCM auth-tag verification failure on device→host staging.
    GcmTagD2H,
    /// Bounce-buffer (swiotlb) pool exhaustion on reserve.
    BounceExhausted,
    /// Channel-ring doorbell drop / full-ring stall on kernel submit.
    RingDoorbell,
    /// UVM migration failure while servicing far faults.
    UvmMigration,
}

impl FaultSite {
    /// Number of distinct sites.
    pub const COUNT: usize = 5;

    /// Every site, in a stable order.
    pub const ALL: [FaultSite; FaultSite::COUNT] = [
        FaultSite::GcmTagH2D,
        FaultSite::GcmTagD2H,
        FaultSite::BounceExhausted,
        FaultSite::RingDoorbell,
        FaultSite::UvmMigration,
    ];

    /// Stable index into per-site tables.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FaultSite::GcmTagH2D => 0,
            FaultSite::GcmTagD2H => 1,
            FaultSite::BounceExhausted => 2,
            FaultSite::RingDoorbell => 3,
            FaultSite::UvmMigration => 4,
        }
    }

    /// Short stable name (used in traces, specs, and error messages).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::GcmTagH2D => "gcm_h2d",
            FaultSite::GcmTagD2H => "gcm_d2h",
            FaultSite::BounceExhausted => "bounce",
            FaultSite::RingDoorbell => "ring",
            FaultSite::UvmMigration => "uvm",
        }
    }

    /// Whether a degrade-to-smaller-staging-chunks recovery is meaningful
    /// at this site. Non-degradable sites fall back to bounded retry under
    /// [`RecoveryPolicy::Degrade`].
    #[must_use]
    pub fn degradable(self) -> bool {
        matches!(
            self,
            FaultSite::GcmTagH2D | FaultSite::GcmTagD2H | FaultSite::BounceExhausted
        )
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-site fault probabilities plus the seed for the injector's private
/// RNG stream. The default plan is empty: every rate 0.0, no draws, no
/// behaviour change.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed with the config seed to derive the injector stream.
    pub seed: u64,
    /// Probability a guarded attempt fails at each site, indexed by
    /// [`FaultSite::index`]. Values outside [0, 1] are clamped on use.
    pub rates: [f64; FaultSite::COUNT],
    /// Upper bound on injected failures per site (0 = unlimited). Keeps a
    /// high-rate plan from starving every retry budget in long programs.
    pub max_per_site: u32,
}

impl FaultPlan {
    /// The empty plan: no faults, no RNG draws.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            rates: [0.0; FaultSite::COUNT],
            max_per_site: 0,
        }
    }

    /// A plan with the same rate at every site.
    #[must_use]
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            rates: [rate; FaultSite::COUNT],
            max_per_site: 0,
        }
    }

    /// Sets one site's rate (builder style).
    #[must_use]
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> Self {
        self.rates[site.index()] = rate;
        self
    }

    /// Caps injected failures per site (builder style; 0 = unlimited).
    #[must_use]
    pub fn with_max_per_site(mut self, max: u32) -> Self {
        self.max_per_site = max;
        self
    }

    /// The injection rate at `site`, clamped to [0, 1].
    #[must_use]
    pub fn rate(&self, site: FaultSite) -> f64 {
        self.rates[site.index()].clamp(0.0, 1.0)
    }

    /// True when no site can fault (the default).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        FaultSite::ALL.iter().all(|s| self.rate(*s) <= 0.0)
    }

    /// Parses a plan spec like `seed=7,gcm=0.4,bounce=0.3,ring=0.2,
    /// uvm=0.4,max=6`. Keys: `seed`, `max`, one per site name
    /// ([`FaultSite::name`]), plus `gcm` as shorthand for both GCM
    /// directions. Empty string parses to the empty plan.
    ///
    /// # Errors
    /// Returns a description of the first malformed token.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| format!("fault plan token {tok:?} is not key=value"))?;
            let fval = || {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("fault plan {key}={value:?}: not a number"))
            };
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .parse::<u64>()
                        .map_err(|_| format!("fault plan seed={value:?}: not a u64"))?;
                }
                "max" => {
                    plan.max_per_site = value
                        .parse::<u32>()
                        .map_err(|_| format!("fault plan max={value:?}: not a u32"))?;
                }
                "gcm" => {
                    let r = fval()?;
                    plan.rates[FaultSite::GcmTagH2D.index()] = r;
                    plan.rates[FaultSite::GcmTagD2H.index()] = r;
                }
                name => {
                    let site = FaultSite::ALL
                        .iter()
                        .copied()
                        .find(|s| s.name() == name)
                        .ok_or_else(|| {
                            let sites = FaultSite::ALL.map(FaultSite::name).join(", ");
                            format!(
                                "fault plan key {name:?} is not a site \
                                 (sites: {sites}; shorthand: gcm)"
                            )
                        })?;
                    plan.rates[site.index()] = fval()?;
                }
            }
        }
        Ok(plan)
    }

    /// Stable fingerprint folded into `SimConfig::content_hash()`.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::hash::Fnv64::new();
        h.write_u64(self.seed);
        for site in FaultSite::ALL {
            h.write_f64(self.rate(site));
        }
        h.write_u32(self.max_per_site);
        h.finish()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for site in FaultSite::ALL {
            if self.rate(site) > 0.0 {
                write!(f, ",{}={}", site.name(), self.rate(site))?;
            }
        }
        if self.max_per_site > 0 {
            write!(f, ",max={}", self.max_per_site)?;
        }
        Ok(())
    }
}

/// How the runtime answers an injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryPolicy {
    /// Bounded retry with deterministic exponential backoff: retry `k`
    /// waits `base * multiplier^(k-1)` (±25% seeded jitter) before the
    /// operation is re-attempted. Exhausting the budget aborts.
    Retry {
        /// Maximum retries before giving up.
        max_attempts: u32,
        /// Backoff before the first retry.
        base: SimDuration,
        /// Geometric growth factor per retry.
        multiplier: f64,
    },
    /// Degrade staging to smaller chunks at degradable sites (GCM tag,
    /// bounce exhaustion); other sites fall back to the default retry.
    Degrade {
        /// Smallest chunk the staging path may degrade to.
        min_chunk: ByteSize,
    },
    /// Abort immediately with a typed error.
    Abort,
}

impl RecoveryPolicy {
    /// The default bounded-retry parameters.
    #[must_use]
    pub fn default_retry() -> Self {
        RecoveryPolicy::Retry {
            max_attempts: 4,
            base: SimDuration::micros(20),
            multiplier: 2.0,
        }
    }

    /// The nominal (jitter-free) backoff before retry `attempt` (1-based).
    /// Zero for [`RecoveryPolicy::Abort`]; [`RecoveryPolicy::Degrade`]
    /// uses the default retry schedule at non-degradable sites.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let (base, multiplier) = match self {
            RecoveryPolicy::Retry {
                base, multiplier, ..
            } => (*base, *multiplier),
            RecoveryPolicy::Degrade { .. } => match RecoveryPolicy::default_retry() {
                RecoveryPolicy::Retry {
                    base, multiplier, ..
                } => (base, multiplier),
                _ => unreachable!(),
            },
            RecoveryPolicy::Abort => return SimDuration::ZERO,
        };
        base.scale(multiplier.powi(attempt.saturating_sub(1) as i32))
    }

    /// Stable fingerprint folded into `SimConfig::content_hash()`.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::hash::Fnv64::new();
        match self {
            RecoveryPolicy::Retry {
                max_attempts,
                base,
                multiplier,
            } => {
                h.write_u8(0);
                h.write_u32(*max_attempts);
                h.write_u64(base.as_nanos());
                h.write_f64(*multiplier);
            }
            RecoveryPolicy::Degrade { min_chunk } => {
                h.write_u8(1);
                h.write_u64(min_chunk.as_u64());
            }
            RecoveryPolicy::Abort => h.write_u8(2),
        }
        h.finish()
    }

    /// Short stable name (used in CLI flags, reports, and goldens).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPolicy::Retry { .. } => "retry",
            RecoveryPolicy::Degrade { .. } => "degrade",
            RecoveryPolicy::Abort => "abort",
        }
    }

    /// Parses a CLI spelling into the default parameterization of each
    /// policy (retry = [`RecoveryPolicy::default_retry`], degrade floors
    /// staging at 64 KiB chunks).
    #[must_use]
    pub fn parse(s: &str) -> Option<RecoveryPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "retry" => Some(RecoveryPolicy::default_retry()),
            "degrade" => Some(RecoveryPolicy::Degrade {
                min_chunk: ByteSize::kib(64),
            }),
            "abort" => Some(RecoveryPolicy::Abort),
            _ => None,
        }
    }
}

impl std::fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::default_retry()
    }
}

/// Outcome of one guarded operation, as decided by the injector.
#[derive(Debug, Clone, PartialEq)]
pub enum Recovery {
    /// No fault injected; proceed normally.
    Clean,
    /// Fault(s) injected and survived by retrying: one backoff wait per
    /// retry, the last of which succeeded.
    Retried {
        /// Backoff before each retry, in order.
        backoffs: Vec<SimDuration>,
    },
    /// Fault injected; the policy degrades staging chunks by `factor`.
    Degraded {
        /// Chunk shrink factor (current chunk / factor).
        factor: u32,
    },
    /// Fault injected and the retry budget exhausted (or policy = Abort).
    Aborted {
        /// Failed attempts, counting the initial one.
        attempts: u32,
    },
}

impl Recovery {
    /// True when no fault was injected.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        matches!(self, Recovery::Clean)
    }

    /// Total backoff wait imposed by this recovery.
    #[must_use]
    pub fn stall(&self) -> SimDuration {
        match self {
            Recovery::Retried { backoffs } => backoffs.iter().copied().sum(),
            _ => SimDuration::ZERO,
        }
    }
}

/// Running totals of injector decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Failed attempts injected (initial faults plus failed retries).
    pub injected: u64,
    /// Retries attempted.
    pub retries: u64,
    /// Guarded operations that recovered via retry.
    pub recovered: u64,
    /// Guarded operations that recovered by degrading.
    pub degraded: u64,
    /// Guarded operations that aborted.
    pub aborted: u64,
}

/// Draws fault decisions and recovery schedules from a private seeded
/// stream. One injector lives per simulated context; identical (plan,
/// policy, config seed) triples replay identical decisions regardless of
/// host thread count.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    policy: RecoveryPolicy,
    rng: Xoshiro256,
    injected: [u32; FaultSite::COUNT],
    counts: FaultCounts,
}

impl FaultInjector {
    /// Builds the injector for one context. The stream is decorrelated
    /// from the context's jitter RNG by mixing the plan seed with the
    /// config seed under a distinct odd constant.
    #[must_use]
    pub fn new(plan: FaultPlan, policy: RecoveryPolicy, config_seed: u64) -> Self {
        let seed = plan
            .seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add(config_seed.rotate_left(17))
            ^ 0xFA17_FA17_FA17_FA17;
        FaultInjector {
            plan,
            policy,
            rng: Xoshiro256::seed_from_u64(seed),
            injected: [0; FaultSite::COUNT],
            counts: FaultCounts::default(),
        }
    }

    /// The plan in force.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The recovery policy in force.
    #[must_use]
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Totals so far.
    #[must_use]
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// True when the plan can never fault (fast path: no draws ever).
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.plan.is_empty()
    }

    /// Decides the fate of one guarded operation at `site`: whether a
    /// fault strikes, and — if it does — the full recovery schedule under
    /// the policy. Takes no RNG draw when the site's rate is 0.0 or the
    /// per-site cap is spent, so an empty plan is behaviourally inert.
    pub fn recover(&mut self, site: FaultSite) -> Recovery {
        let rate = self.plan.rate(site);
        if rate <= 0.0 {
            return Recovery::Clean;
        }
        let idx = site.index();
        if self.plan.max_per_site > 0 && self.injected[idx] >= self.plan.max_per_site {
            return Recovery::Clean;
        }
        if self.rng.next_f64() >= rate {
            return Recovery::Clean;
        }
        self.injected[idx] += 1;
        self.counts.injected += 1;

        match &self.policy {
            RecoveryPolicy::Abort => {
                self.counts.aborted += 1;
                Recovery::Aborted { attempts: 1 }
            }
            RecoveryPolicy::Degrade { .. } if site.degradable() => {
                self.counts.degraded += 1;
                Recovery::Degraded { factor: 2 }
            }
            policy => {
                let max_attempts = match policy {
                    RecoveryPolicy::Retry { max_attempts, .. } => *max_attempts,
                    // Non-degradable site under Degrade: default retry.
                    _ => match RecoveryPolicy::default_retry() {
                        RecoveryPolicy::Retry { max_attempts, .. } => max_attempts,
                        _ => unreachable!(),
                    },
                };
                let mut backoffs = Vec::new();
                for attempt in 1..=max_attempts {
                    self.counts.retries += 1;
                    let jitter = self.rng.jitter(0.25);
                    backoffs.push(self.policy.backoff(attempt).scale(jitter));
                    let failed_again = self.rng.next_f64() < rate
                        && (self.plan.max_per_site == 0
                            || self.injected[idx] < self.plan.max_per_site);
                    if !failed_again {
                        self.counts.recovered += 1;
                        return Recovery::Retried { backoffs };
                    }
                    self.injected[idx] += 1;
                    self.counts.injected += 1;
                }
                self.counts.aborted += 1;
                Recovery::Aborted {
                    attempts: max_attempts + 1,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert_and_drawless() {
        let mut inj = FaultInjector::new(FaultPlan::none(), RecoveryPolicy::default(), 1);
        let untouched = inj.rng.clone();
        for site in FaultSite::ALL {
            assert_eq!(inj.recover(site), Recovery::Clean);
        }
        // The stream was never advanced: next draws match a pristine clone.
        assert_eq!(inj.rng.next_u64(), untouched.clone().next_u64());
        assert_eq!(inj.counts(), FaultCounts::default());
        assert!(inj.is_quiet());
    }

    #[test]
    fn decisions_replay_per_seed() {
        let plan = FaultPlan::uniform(7, 0.5);
        let mut a = FaultInjector::new(plan.clone(), RecoveryPolicy::default(), 42);
        let mut b = FaultInjector::new(plan.clone(), RecoveryPolicy::default(), 42);
        for _ in 0..200 {
            for site in FaultSite::ALL {
                assert_eq!(a.recover(site), b.recover(site));
            }
        }
        assert_eq!(a.counts(), b.counts());
        // A different config seed yields a different decision stream.
        let mut c = FaultInjector::new(plan, RecoveryPolicy::default(), 43);
        let diverged = (0..200).any(|_| {
            FaultSite::ALL
                .iter()
                .any(|s| a.recover(*s) != c.recover(*s))
        });
        assert!(diverged);
    }

    #[test]
    fn backoff_schedule_is_exponential() {
        let p = RecoveryPolicy::default_retry();
        assert_eq!(p.backoff(1), SimDuration::micros(20));
        assert_eq!(p.backoff(2), SimDuration::micros(40));
        assert_eq!(p.backoff(3), SimDuration::micros(80));
        assert_eq!(RecoveryPolicy::Abort.backoff(3), SimDuration::ZERO);
    }

    #[test]
    fn certain_fault_exhausts_retry_budget() {
        let plan = FaultPlan::uniform(1, 1.0);
        let mut inj = FaultInjector::new(plan, RecoveryPolicy::default(), 0);
        match inj.recover(FaultSite::RingDoorbell) {
            Recovery::Aborted { attempts } => assert_eq!(attempts, 5),
            other => panic!("expected abort, got {other:?}"),
        }
        assert_eq!(inj.counts().aborted, 1);
        assert_eq!(inj.counts().retries, 4);
    }

    #[test]
    fn degrade_policy_splits_by_site() {
        let plan = FaultPlan::uniform(1, 1.0).with_max_per_site(1);
        let policy = RecoveryPolicy::Degrade {
            min_chunk: ByteSize::kib(64),
        };
        let mut inj = FaultInjector::new(plan, policy, 0);
        assert!(matches!(
            inj.recover(FaultSite::GcmTagH2D),
            Recovery::Degraded { factor: 2 }
        ));
        // Cap of 1 already spent for gcm_h2d, bounce still eligible.
        assert!(matches!(
            inj.recover(FaultSite::BounceExhausted),
            Recovery::Degraded { factor: 2 }
        ));
        // Ring is not degradable: falls back to retry, and with rate 1.0
        // but the cap spent after the first failure, the first retry
        // succeeds.
        assert!(matches!(
            inj.recover(FaultSite::RingDoorbell),
            Recovery::Retried { .. }
        ));
    }

    #[test]
    fn parse_round_trips_and_rejects_junk() {
        let plan = FaultPlan::parse("seed=9, gcm=0.25, bounce=0.5, max=3").unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.rate(FaultSite::GcmTagH2D), 0.25);
        assert_eq!(plan.rate(FaultSite::GcmTagD2H), 0.25);
        assert_eq!(plan.rate(FaultSite::BounceExhausted), 0.5);
        assert_eq!(plan.rate(FaultSite::RingDoorbell), 0.0);
        assert_eq!(plan.max_per_site, 3);
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("gcm").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
    }

    #[test]
    fn fingerprint_covers_every_field() {
        let base = FaultPlan::uniform(1, 0.5);
        let mut variants = vec![
            FaultPlan::uniform(2, 0.5),
            FaultPlan::uniform(1, 0.4),
            FaultPlan::uniform(1, 0.5).with_max_per_site(3),
        ];
        for site in FaultSite::ALL {
            variants.push(base.clone().with_rate(site, 0.6));
        }
        for v in variants {
            assert_ne!(base.fingerprint(), v.fingerprint(), "{v}");
        }
        let policies = [
            RecoveryPolicy::default_retry(),
            RecoveryPolicy::Retry {
                max_attempts: 9,
                base: SimDuration::micros(20),
                multiplier: 2.0,
            },
            RecoveryPolicy::Degrade {
                min_chunk: ByteSize::kib(64),
            },
            RecoveryPolicy::Abort,
        ];
        for (i, a) in policies.iter().enumerate() {
            for b in &policies[i + 1..] {
                assert_ne!(a.fingerprint(), b.fingerprint());
            }
        }
    }
}
