//! Diagnostic-plane selection as one branch-free bitmask.
//!
//! The simulators carry three optional diagnostic planes — virtual-time
//! metrics, causal-edge collection, and fault injection. Hot emission
//! sites used to test each plane through its own `bool`/`Option` chain;
//! [`Planes`] packs the three toggles into a single byte so an emission
//! site performs exactly one mask test (`planes.any(...)`) regardless of
//! how many planes it feeds.

/// A set of enabled diagnostic planes, packed into one byte.
///
/// ```
/// use hcc_types::Planes;
///
/// let p = Planes::METRICS | Planes::CAUSAL;
/// assert!(p.contains(Planes::METRICS));
/// assert!(p.any(Planes::CAUSAL | Planes::FAULT));
/// assert!(!p.contains(Planes::FAULT));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Planes(u8);

impl Planes {
    /// No diagnostic planes enabled (the hot-path default).
    pub const NONE: Planes = Planes(0);
    /// Virtual-time metrics plane (queue/occupancy gauges).
    pub const METRICS: Planes = Planes(1 << 0);
    /// Causal-edge collection (typed dependency DAG).
    pub const CAUSAL: Planes = Planes(1 << 1);
    /// Fault injection (a non-empty [`crate::FaultPlan`]).
    pub const FAULT: Planes = Planes(1 << 2);
    /// Request flight recording (per-request span trees sampled by the
    /// serving layer). Deliberately outside [`Planes::ALL`]: the three
    /// simulator planes feed the scenario engine, while flight recording
    /// is a serving-layer plane gated at the cluster loop.
    pub const FLIGHT: Planes = Planes(1 << 3);

    /// All three simulator planes (metrics, causal, fault). Does not
    /// include [`Planes::FLIGHT`], which no simulator emission site
    /// tests.
    pub const ALL: Planes = Planes(0b111);

    /// Builds a set from individual toggles.
    #[must_use]
    pub const fn from_flags(metrics: bool, causal: bool, fault: bool) -> Planes {
        Planes((metrics as u8) | ((causal as u8) << 1) | ((fault as u8) << 2))
    }

    /// `true` when every plane in `other` is enabled here.
    #[must_use]
    pub const fn contains(self, other: Planes) -> bool {
        self.0 & other.0 == other.0
    }

    /// `true` when *any* plane in `other` is enabled here — the single
    /// test hot emission sites perform.
    #[must_use]
    pub const fn any(self, other: Planes) -> bool {
        self.0 & other.0 != 0
    }

    /// `true` when no plane is enabled.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `self` with the planes in `other` added.
    #[must_use]
    pub const fn with(self, other: Planes) -> Planes {
        Planes(self.0 | other.0)
    }

    /// Returns `self` with the planes in `other` removed.
    #[must_use]
    pub const fn without(self, other: Planes) -> Planes {
        Planes(self.0 & !other.0)
    }

    /// Sets or clears the planes in `mask` according to `enabled`.
    #[must_use]
    pub const fn set(self, mask: Planes, enabled: bool) -> Planes {
        if enabled {
            self.with(mask)
        } else {
            self.without(mask)
        }
    }

    /// The raw bit pattern (stable: metrics=1, causal=2, fault=4).
    #[must_use]
    pub const fn bits(self) -> u8 {
        self.0
    }
}

impl std::ops::BitOr for Planes {
    type Output = Planes;
    fn bitor(self, rhs: Planes) -> Planes {
        Planes(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for Planes {
    fn bitor_assign(&mut self, rhs: Planes) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for Planes {
    type Output = Planes;
    fn bitand(self, rhs: Planes) -> Planes {
        Planes(self.0 & rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_roundtrip() {
        for metrics in [false, true] {
            for causal in [false, true] {
                for fault in [false, true] {
                    let p = Planes::from_flags(metrics, causal, fault);
                    assert_eq!(p.contains(Planes::METRICS), metrics);
                    assert_eq!(p.contains(Planes::CAUSAL), causal);
                    assert_eq!(p.contains(Planes::FAULT), fault);
                    assert_eq!(p.is_empty(), !metrics && !causal && !fault);
                }
            }
        }
    }

    #[test]
    fn any_is_union_test() {
        let p = Planes::METRICS;
        assert!(p.any(Planes::METRICS | Planes::CAUSAL));
        assert!(!p.any(Planes::CAUSAL | Planes::FAULT));
        assert!(!Planes::NONE.any(Planes::ALL));
    }

    #[test]
    fn set_and_without() {
        let p = Planes::NONE
            .set(Planes::METRICS, true)
            .set(Planes::FAULT, true);
        assert_eq!(p, Planes::METRICS | Planes::FAULT);
        assert_eq!(p.set(Planes::FAULT, false), Planes::METRICS);
        assert_eq!(p.without(Planes::ALL), Planes::NONE);
        assert_eq!(Planes::ALL.bits(), 0b111);
    }

    #[test]
    fn flight_plane_is_outside_the_simulator_set() {
        assert_eq!(Planes::FLIGHT.bits(), 0b1000);
        assert!(!Planes::ALL.contains(Planes::FLIGHT));
        let p = Planes::ALL | Planes::FLIGHT;
        assert!(p.contains(Planes::FLIGHT));
        assert_eq!(p.without(Planes::FLIGHT), Planes::ALL);
    }
}
