//! Error-budget and burn-rate math for streaming SLO monitoring.
//!
//! A [`LatencyBudget`] (see [`crate::storm`]) declares what a tenant
//! tolerates over a whole soak: a p99 latency bound and a rejection
//! allowance in parts per million. The watchtower needs the same contract
//! re-expressed as an *error budget rate*: the fraction of requests that
//! may go bad (miss p99 or get rejected) before the contract is burning.
//! This module derives that rate and implements the multi-window
//! burn-rate test popularised by the Google SRE workbook: an alert fires
//! only when budget consumption exceeds a threshold in **both** a fast
//! window (catches the spike) and a slow window (filters the blip).
//!
//! All arithmetic is integer (parts-per-million fractions, milli-x burn
//! rates) so alert decisions are bit-identical across platforms and
//! thread counts.

use crate::storm::LatencyBudget;
use crate::SimDuration;

/// Burn rates are expressed in thousandths of the budget rate:
/// `1000` milli-x means bad events arrive at exactly the budgeted rate.
pub const BURN_ONE: u64 = 1_000;

/// The p99 clause of a [`LatencyBudget`] tolerates 1% of requests over
/// the bound; expressed in parts per million of the tenant's total.
pub const P99_ALLOWANCE_PPM: u64 = 10_000;

/// Computes a burn rate in milli-x: the observed bad fraction
/// (`bad / total`) divided by the budgeted bad fraction
/// (`budget_ppm / 1e6`), scaled by [`BURN_ONE`]. Zero totals and zero
/// budgets burn nothing (an empty window cannot consume budget).
#[must_use]
pub fn burn_rate_milli(bad: u64, total: u64, budget_ppm: u64) -> u64 {
    if total == 0 || budget_ppm == 0 {
        return 0;
    }
    let num = u128::from(bad) * 1_000_000_000u128;
    let den = u128::from(total) * u128::from(budget_ppm);
    u64::try_from(num / den).unwrap_or(u64::MAX)
}

impl LatencyBudget {
    /// The fraction of requests this budget tolerates going bad, in parts
    /// per million: the p99 clause's 1% allowance plus the declared
    /// rejection allowance, capped at 100%.
    #[must_use]
    pub fn error_budget_ppm(&self) -> u64 {
        (P99_ALLOWANCE_PPM + self.max_reject_ppm).min(1_000_000)
    }

    /// Whether one completed-or-rejected request consumes error budget:
    /// it was rejected outright, or it finished over the p99 bound.
    #[must_use]
    pub fn is_bad(&self, latency: SimDuration, rejected: bool) -> bool {
        rejected || latency > self.p99
    }
}

/// A fast/slow window pair with a shared burn threshold. The fast window
/// is a tumbling window of width [`BurnPair::fast`]; the slow window is
/// the trailing span covering [`BurnPair::slow_factor`] fast windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurnPair {
    /// Width of the fast (tumbling) window, in virtual time.
    pub fast: SimDuration,
    /// Slow window width as a multiple of the fast width.
    pub slow_factor: u32,
    /// Alert threshold in milli-x ([`BURN_ONE`] = burning at exactly the
    /// budgeted rate).
    pub threshold_milli: u64,
}

impl BurnPair {
    /// Width of the slow (trailing) window.
    #[must_use]
    pub fn slow(&self) -> SimDuration {
        SimDuration::from_nanos(self.fast.as_nanos() * u64::from(self.slow_factor.max(1)))
    }

    /// The multi-window alert rule: fires iff the burn rate meets the
    /// threshold in *both* windows of the pair.
    #[must_use]
    pub fn fires(&self, fast_milli: u64, slow_milli: u64) -> bool {
        fast_milli >= self.threshold_milli && slow_milli >= self.threshold_milli
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> LatencyBudget {
        LatencyBudget {
            p99: SimDuration::millis(300),
            p999: SimDuration::millis(400),
            max_reject_ppm: 60_000,
        }
    }

    #[test]
    fn error_budget_adds_p99_clause_to_reject_allowance() {
        assert_eq!(budget().error_budget_ppm(), 70_000);
        let generous = LatencyBudget {
            max_reject_ppm: 999_999_999,
            ..budget()
        };
        assert_eq!(generous.error_budget_ppm(), 1_000_000);
    }

    #[test]
    fn bad_events_are_rejections_or_p99_misses() {
        let b = budget();
        assert!(b.is_bad(SimDuration::ZERO, true));
        assert!(b.is_bad(SimDuration::millis(301), false));
        assert!(!b.is_bad(SimDuration::millis(300), false));
        assert!(!b.is_bad(SimDuration::millis(1), false));
    }

    #[test]
    fn burn_rate_is_bad_fraction_over_budget_fraction() {
        // 7% bad against a 7% budget burns at exactly 1x.
        assert_eq!(burn_rate_milli(70, 1000, 70_000), BURN_ONE);
        // 14x burn: 98% bad against the same budget.
        assert_eq!(burn_rate_milli(980, 1000, 70_000), 14 * BURN_ONE);
        // Empty windows and zero budgets burn nothing.
        assert_eq!(burn_rate_milli(0, 0, 70_000), 0);
        assert_eq!(burn_rate_milli(5, 10, 0), 0);
        assert_eq!(burn_rate_milli(0, 10, 70_000), 0);
    }

    #[test]
    fn burn_rate_saturates_instead_of_overflowing() {
        assert!(burn_rate_milli(u64::MAX, 1, 1) > 0);
    }

    #[test]
    fn pair_fires_only_when_both_windows_burn() {
        let pair = BurnPair {
            fast: SimDuration::secs(5),
            slow_factor: 6,
            threshold_milli: 4_000,
        };
        assert_eq!(pair.slow(), SimDuration::secs(30));
        assert!(pair.fires(4_000, 4_000));
        assert!(pair.fires(14_000, 4_001));
        assert!(!pair.fires(14_000, 3_999), "slow window must confirm");
        assert!(!pair.fires(3_999, 14_000), "fast window must confirm");
    }

    #[test]
    fn zero_slow_factor_degrades_to_fast_width() {
        let pair = BurnPair {
            fast: SimDuration::secs(5),
            slow_factor: 0,
            threshold_milli: 1_000,
        };
        assert_eq!(pair.slow(), SimDuration::secs(5));
    }
}
