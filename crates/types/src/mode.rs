//! Shared mode enums: confidential-computing state, memory kinds, copy
//! directions, and CPU models.

use std::fmt;

/// Whether the workload runs inside a trust domain with NVIDIA CC enabled
/// (`On`) or in a regular VM (`Off`, the paper's "base"/"non-CC" mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CcMode {
    /// Regular VM, no confidential computing (the paper's *base*).
    #[default]
    Off,
    /// Trust domain with the GPU in CC mode.
    On,
}

impl CcMode {
    /// `true` when confidential computing is enabled.
    pub const fn is_on(self) -> bool {
        matches!(self, CcMode::On)
    }

    /// Both modes, in the order the paper plots them (base first).
    pub const ALL: [CcMode; 2] = [CcMode::Off, CcMode::On];
}

impl fmt::Display for CcMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcMode::Off => f.write_str("base"),
            CcMode::On => f.write_str("cc"),
        }
    }
}

/// Host-side memory kind used for a transfer endpoint.
///
/// Under CC, *pinned* host memory cannot exist natively (TDX forbids device
/// access to private pages), so the runtime transparently demotes it to a
/// pageable/UVM-backed mechanism — the paper's Observation 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HostMemKind {
    /// Ordinary pageable host memory (`malloc`).
    #[default]
    Pageable,
    /// Page-locked host memory (`cudaMallocHost`).
    Pinned,
}

impl HostMemKind {
    /// Both kinds, pageable first (the paper's Fig. 4a ordering).
    pub const ALL: [HostMemKind; 2] = [HostMemKind::Pageable, HostMemKind::Pinned];
}

impl fmt::Display for HostMemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostMemKind::Pageable => f.write_str("pageable"),
            HostMemKind::Pinned => f.write_str("pinned"),
        }
    }
}

/// The memory space an allocation lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Host (CPU) memory.
    Host,
    /// Device (GPU HBM) memory.
    Device,
    /// Unified/managed memory migrating on demand (`cudaMallocManaged`).
    Managed,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemSpace::Host => f.write_str("host"),
            MemSpace::Device => f.write_str("device"),
            MemSpace::Managed => f.write_str("managed"),
        }
    }
}

/// Direction of an explicit memory copy, as labelled by Nsight Systems and
/// the paper's Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyKind {
    /// Host to device.
    H2D,
    /// Device to host.
    D2H,
    /// Device to device (also how Nsight labels CC "managed" pinned copies).
    D2D,
}

impl CopyKind {
    /// All directions in the paper's plotting order.
    pub const ALL: [CopyKind; 3] = [CopyKind::H2D, CopyKind::D2H, CopyKind::D2D];
}

impl fmt::Display for CopyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CopyKind::H2D => f.write_str("H2D"),
            CopyKind::D2H => f.write_str("D2H"),
            CopyKind::D2D => f.write_str("D2D"),
        }
    }
}

/// CPU models whose single-core software-crypto throughput the paper
/// measures (Fig. 4b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuModel {
    /// Intel 5th-gen Xeon (Emerald Rapids), the paper's TDX host.
    EmeraldRapids,
    /// NVIDIA Grace (Arm Neoverse V2).
    Grace,
}

impl CpuModel {
    /// Both CPUs in the paper's Fig. 4b order.
    pub const ALL: [CpuModel; 2] = [CpuModel::EmeraldRapids, CpuModel::Grace];
}

impl fmt::Display for CpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuModel::EmeraldRapids => f.write_str("Intel EMR"),
            CpuModel::Grace => f.write_str("NVIDIA Grace"),
        }
    }
}

macro_rules! display_to_json {
    ($($ty:ty),+) => {
        $(impl crate::json::ToJson for $ty {
            /// Serializes as the `Display` label.
            fn to_json(&self) -> crate::json::Json {
                crate::json::Json::Str(self.to_string())
            }
        })+
    };
}
display_to_json!(CcMode, HostMemKind, MemSpace, CopyKind, CpuModel);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(CcMode::Off.to_string(), "base");
        assert_eq!(CcMode::On.to_string(), "cc");
        assert_eq!(CopyKind::H2D.to_string(), "H2D");
        assert_eq!(HostMemKind::Pinned.to_string(), "pinned");
    }

    #[test]
    fn cc_mode_predicates() {
        assert!(CcMode::On.is_on());
        assert!(!CcMode::Off.is_on());
        assert_eq!(CcMode::default(), CcMode::Off);
    }
}
