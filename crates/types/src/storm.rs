//! Storm and latency-budget specifications for the chaos lab.
//!
//! A [`StormProfile`] names a *correlated* fault storm — a cluster of
//! per-site peak rates over the existing [`FaultSite`]s that escalate
//! together (bounce-pool exhaustion waves drag GCM retries with them, UVM
//! thrash flaps the channel ring, …). A [`StormSchedule`] tiles a
//! virtual-time horizon with calm / rising / peak windows drawn from a
//! decorrelated RNG stream, so the same seed always replays the same
//! storm calendar regardless of what the traffic layer draws. A
//! [`LatencyBudget`] is the per-tenant SLO contract the chaos report
//! renders verdicts against.
//!
//! Everything here is pure data plus deterministic generation: the chaos
//! harness (`hcc_bench::chaos`) composes these specs with the serving
//! cluster's event loop.

use crate::fault::{FaultPlan, FaultSite};
use crate::rng::Xoshiro256;
use crate::{SimDuration, SimTime};

/// Decorrelation constants for the storm-calendar stream. Distinct from
/// the [`crate::FaultInjector`] mixing constants so a storm schedule and
/// the per-operation fault draws can never alias even under equal seeds.
const STORM_MIX_MUL: u64 = 0xD1B5_4A32_D192_ED03;
const STORM_MIX_XOR: u64 = 0x5707_3A5B_91AC_C521;

/// How hard a storm is blowing inside one schedule window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StormIntensity {
    /// No storm: the empty fault plan, zero injector draws.
    Calm,
    /// Shoulder of an episode: peak rates scaled down.
    Rising,
    /// Full storm: the profile's peak rates.
    Peak,
}

impl StormIntensity {
    /// Number of distinct intensities.
    pub const COUNT: usize = 3;

    /// Every intensity, in escalation order.
    pub const ALL: [StormIntensity; StormIntensity::COUNT] = [
        StormIntensity::Calm,
        StormIntensity::Rising,
        StormIntensity::Peak,
    ];

    /// Stable index into per-intensity tables.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            StormIntensity::Calm => 0,
            StormIntensity::Rising => 1,
            StormIntensity::Peak => 2,
        }
    }

    /// Short stable name (used in reports and goldens).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StormIntensity::Calm => "calm",
            StormIntensity::Rising => "rising",
            StormIntensity::Peak => "peak",
        }
    }
}

impl std::fmt::Display for StormIntensity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, correlated fault storm: per-site rates at peak intensity plus
/// the scale-down factor applied on the rising shoulders.
#[derive(Debug, Clone, PartialEq)]
pub struct StormProfile {
    /// Stable name (used in CLI flags, reports, and goldens).
    pub name: &'static str,
    /// Per-site fault probability at [`StormIntensity::Peak`], indexed by
    /// [`FaultSite::index`].
    pub peak: [f64; FaultSite::COUNT],
    /// Factor applied to `peak` during [`StormIntensity::Rising`].
    pub rising_frac: f64,
    /// Per-site injection cap folded into the generated [`FaultPlan`]s
    /// (0 = unlimited).
    pub max_per_site: u32,
}

impl StormProfile {
    /// Bounce-pool exhaustion wave: swiotlb reserve failures dominate and
    /// drag correlated GCM re-staging failures along.
    #[must_use]
    pub fn bounce_squall() -> Self {
        let mut peak = [0.0; FaultSite::COUNT];
        peak[FaultSite::BounceExhausted.index()] = 0.60;
        peak[FaultSite::GcmTagH2D.index()] = 0.08;
        peak[FaultSite::GcmTagD2H.index()] = 0.08;
        StormProfile {
            name: "bounce-squall",
            peak,
            rising_frac: 0.35,
            max_per_site: 12,
        }
    }

    /// Crypto-queue saturation burst: AES-GCM tag failures in both
    /// staging directions, with mild bounce-pool backpressure.
    #[must_use]
    pub fn crypto_burst() -> Self {
        let mut peak = [0.0; FaultSite::COUNT];
        peak[FaultSite::GcmTagH2D.index()] = 0.45;
        peak[FaultSite::GcmTagD2H.index()] = 0.45;
        peak[FaultSite::BounceExhausted.index()] = 0.10;
        StormProfile {
            name: "crypto-burst",
            peak,
            rising_frac: 0.35,
            max_per_site: 10,
        }
    }

    /// UVM thrash episode: migration failures while servicing far
    /// faults, with correlated ring-doorbell pressure.
    #[must_use]
    pub fn uvm_thrash() -> Self {
        let mut peak = [0.0; FaultSite::COUNT];
        peak[FaultSite::UvmMigration.index()] = 0.55;
        peak[FaultSite::RingDoorbell.index()] = 0.08;
        StormProfile {
            name: "uvm-thrash",
            peak,
            rising_frac: 0.35,
            max_per_site: 12,
        }
    }

    /// Ring-doorbell flap: kernel-submit doorbell drops dominate, with a
    /// trickle of UVM collateral.
    #[must_use]
    pub fn ring_flap() -> Self {
        let mut peak = [0.0; FaultSite::COUNT];
        peak[FaultSite::RingDoorbell.index()] = 0.50;
        peak[FaultSite::UvmMigration.index()] = 0.05;
        StormProfile {
            name: "ring-flap",
            peak,
            rising_frac: 0.35,
            max_per_site: 10,
        }
    }

    /// Every built-in profile, in a stable order.
    #[must_use]
    pub fn builtin() -> Vec<StormProfile> {
        vec![
            StormProfile::bounce_squall(),
            StormProfile::crypto_burst(),
            StormProfile::uvm_thrash(),
            StormProfile::ring_flap(),
        ]
    }

    /// Looks up a built-in profile by [`StormProfile::name`].
    #[must_use]
    pub fn by_name(name: &str) -> Option<StormProfile> {
        StormProfile::builtin().into_iter().find(|p| p.name == name)
    }

    /// The [`FaultPlan`] this storm injects at `intensity`. Calm windows
    /// return the empty plan (zero injector draws), so calm traffic is
    /// bit-identical to a fault-free run.
    #[must_use]
    pub fn plan(&self, intensity: StormIntensity, plan_seed: u64) -> FaultPlan {
        let factor = match intensity {
            StormIntensity::Calm => return FaultPlan::none(),
            StormIntensity::Rising => self.rising_frac,
            StormIntensity::Peak => 1.0,
        };
        let mut rates = [0.0; FaultSite::COUNT];
        for site in FaultSite::ALL {
            rates[site.index()] = (self.peak[site.index()] * factor).clamp(0.0, 1.0);
        }
        FaultPlan {
            seed: plan_seed,
            rates,
            max_per_site: self.max_per_site,
        }
    }

    /// Stable fingerprint (folded into schedule seeds and report hashes).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::hash::Fnv64::new();
        h.write_str(self.name);
        for site in FaultSite::ALL {
            h.write_f64(self.peak[site.index()]);
        }
        h.write_f64(self.rising_frac);
        h.write_u32(self.max_per_site);
        h.finish()
    }
}

impl std::fmt::Display for StormProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name)
    }
}

/// One contiguous window of a storm calendar: `[start, end)` at a fixed
/// intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormWindow {
    /// Inclusive virtual-time start of the window.
    pub start: SimTime,
    /// Exclusive virtual-time end of the window.
    pub end: SimTime,
    /// Intensity over the whole window.
    pub intensity: StormIntensity,
}

impl StormWindow {
    /// Window length.
    #[must_use]
    pub fn len(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// True when the window covers no time.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// A seeded storm calendar: contiguous [`StormWindow`]s tiling
/// `[0, horizon)` exactly — no gaps, no overlap — generated from a
/// decorrelated RNG stream so the same `(seed, horizon, episodes)` triple
/// always replays the same calendar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormSchedule {
    /// Sorted, contiguous windows covering the full horizon.
    pub windows: Vec<StormWindow>,
    /// Exclusive end of the calendar; times at or past it are calm.
    pub horizon: SimTime,
}

impl StormSchedule {
    /// Generates a calendar with `episodes` storm episodes spread over
    /// `horizon`. Each episode is a rising → peak → rising escalation
    /// placed at a seeded offset inside its equal-width slot; everything
    /// between episodes is calm. A zero horizon or zero episode count
    /// yields an all-calm calendar.
    #[must_use]
    pub fn generate(seed: u64, horizon: SimDuration, episodes: u32) -> StormSchedule {
        let horizon_ns = horizon.as_nanos();
        let horizon_t = SimTime::from_nanos(horizon_ns);
        // Each episode needs at least its four sub-window boundaries to
        // land on distinct nanoseconds.
        let episodes = u64::from(episodes).min(horizon_ns / 16);
        if episodes == 0 {
            let windows = if horizon_ns == 0 {
                Vec::new()
            } else {
                vec![StormWindow {
                    start: SimTime::ZERO,
                    end: horizon_t,
                    intensity: StormIntensity::Calm,
                }]
            };
            return StormSchedule {
                windows,
                horizon: horizon_t,
            };
        }

        let mut rng = Xoshiro256::seed_from_u64(seed.wrapping_mul(STORM_MIX_MUL) ^ STORM_MIX_XOR);
        let slot = horizon_ns / episodes;
        let mut windows = Vec::with_capacity(episodes as usize * 4 + 1);
        let mut cursor = 0u64;
        let push = |windows: &mut Vec<StormWindow>, start: u64, end: u64, i: StormIntensity| {
            if end > start {
                windows.push(StormWindow {
                    start: SimTime::from_nanos(start),
                    end: SimTime::from_nanos(end),
                    intensity: i,
                });
            }
        };
        for ep in 0..episodes {
            let slot_start = ep * slot;
            // Episode occupies 25–60% of its slot at a seeded offset.
            let frac = 0.25 + 0.35 * rng.next_f64();
            let len = ((slot as f64) * frac) as u64;
            let len = len.max(4).min(slot);
            let offset = rng.next_range(slot - len + 1);
            let ep_start = slot_start + offset;
            let quarter = len / 4;
            let r1_end = ep_start + quarter;
            let peak_end = ep_start + len - quarter;
            let ep_end = ep_start + len;
            push(&mut windows, cursor, ep_start, StormIntensity::Calm);
            push(&mut windows, ep_start, r1_end, StormIntensity::Rising);
            push(&mut windows, r1_end, peak_end, StormIntensity::Peak);
            push(&mut windows, peak_end, ep_end, StormIntensity::Rising);
            cursor = ep_end;
        }
        push(&mut windows, cursor, horizon_ns, StormIntensity::Calm);
        StormSchedule {
            windows,
            horizon: horizon_t,
        }
    }

    /// The intensity in force at `t`. Times at or past the horizon are
    /// calm (the storm calendar has ended).
    #[must_use]
    pub fn intensity_at(&self, t: SimTime) -> StormIntensity {
        let idx = self.windows.partition_point(|w| w.start <= t);
        if idx == 0 {
            return StormIntensity::Calm;
        }
        let w = &self.windows[idx - 1];
        if t < w.end {
            w.intensity
        } else {
            StormIntensity::Calm
        }
    }

    /// The 1-based ordinal of the storm episode in force at `t`, or
    /// `None` when `t` falls in a calm stretch (or past the horizon). An
    /// episode is a maximal run of non-calm windows, so the rising
    /// shoulders and the peak of one escalation share an ordinal.
    #[must_use]
    pub fn episode_at(&self, t: SimTime) -> Option<u32> {
        let idx = self.windows.partition_point(|w| w.start <= t);
        if idx == 0 {
            return None;
        }
        if t >= self.windows[idx - 1].end || self.windows[idx - 1].intensity == StormIntensity::Calm
        {
            return None;
        }
        let mut episode = 0u32;
        let mut prev_calm = true;
        for w in &self.windows[..idx] {
            let stormy = w.intensity != StormIntensity::Calm;
            if stormy && prev_calm {
                episode += 1;
            }
            prev_calm = !stormy;
        }
        Some(episode)
    }

    /// End times of every peak window, in order — the reference points
    /// for time-to-recover measurements.
    #[must_use]
    pub fn peak_ends(&self) -> Vec<SimTime> {
        self.windows
            .iter()
            .filter(|w| w.intensity == StormIntensity::Peak)
            .map(|w| w.end)
            .collect()
    }

    /// Total time spent at each intensity, indexed by
    /// [`StormIntensity::index`]. The three entries sum to the horizon.
    #[must_use]
    pub fn coverage(&self) -> [SimDuration; StormIntensity::COUNT] {
        let mut totals = [0u64; StormIntensity::COUNT];
        for w in &self.windows {
            totals[w.intensity.index()] += w.len().as_nanos();
        }
        [
            SimDuration::from_nanos(totals[0]),
            SimDuration::from_nanos(totals[1]),
            SimDuration::from_nanos(totals[2]),
        ]
    }

    /// Stable fingerprint over the full calendar.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::hash::Fnv64::new();
        h.write_u64(self.horizon.as_nanos());
        for w in &self.windows {
            h.write_u64(w.start.as_nanos());
            h.write_u64(w.end.as_nanos());
            h.write_u8(w.intensity.index() as u8);
        }
        h.finish()
    }
}

/// A per-tenant latency/SLO contract the chaos report judges against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyBudget {
    /// The tenant's declared p99 end-to-end latency budget.
    pub p99: SimDuration,
    /// The tenant's declared p999 end-to-end latency budget.
    pub p999: SimDuration,
    /// Maximum tolerated rejected requests, in parts per million of the
    /// tenant's admitted+rejected total.
    pub max_reject_ppm: u64,
}

impl LatencyBudget {
    /// Stable fingerprint folded into report hashes.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::hash::Fnv64::new();
        h.write_u64(self.p99.as_nanos());
        h.write_u64(self.p999.as_nanos());
        h.write_u64(self.max_reject_ppm);
        h.finish()
    }
}

impl std::fmt::Display for LatencyBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p99<={:.2}ms p999<={:.2}ms rej<={}ppm",
            self.p99.as_millis_f64(),
            self.p999.as_millis_f64(),
            self.max_reject_ppm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_tiles_horizon_exactly() {
        let horizon = SimDuration::secs(120);
        let s = StormSchedule::generate(0xC4405, horizon, 8);
        assert_eq!(s.windows.first().unwrap().start, SimTime::ZERO);
        assert_eq!(
            s.windows.last().unwrap().end,
            SimTime::from_nanos(horizon.as_nanos())
        );
        for pair in s.windows.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "gap or overlap in calendar");
        }
        let cov = s.coverage();
        let total: u64 = cov.iter().map(|d| d.as_nanos()).sum();
        assert_eq!(total, horizon.as_nanos());
        assert_eq!(s.peak_ends().len(), 8);
    }

    #[test]
    fn schedule_replays_bit_identically() {
        let a = StormSchedule::generate(7, SimDuration::secs(60), 4);
        let b = StormSchedule::generate(7, SimDuration::secs(60), 4);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = StormSchedule::generate(8, SimDuration::secs(60), 4);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn intensity_lookup_matches_windows() {
        let s = StormSchedule::generate(42, SimDuration::secs(30), 3);
        for w in &s.windows {
            assert_eq!(s.intensity_at(w.start), w.intensity);
            let mid = SimTime::from_nanos((w.start.as_nanos() + w.end.as_nanos()) / 2);
            assert_eq!(s.intensity_at(mid), w.intensity);
        }
        assert_eq!(s.intensity_at(s.horizon), StormIntensity::Calm);
    }

    #[test]
    fn episode_ordinals_follow_the_calendar() {
        let s = StormSchedule::generate(42, SimDuration::secs(30), 3);
        let mut seen = 0u32;
        let mut prev_calm = true;
        for w in &s.windows {
            let stormy = w.intensity != StormIntensity::Calm;
            if stormy && prev_calm {
                seen += 1;
            }
            prev_calm = !stormy;
            let expected = if stormy { Some(seen) } else { None };
            assert_eq!(s.episode_at(w.start), expected);
            let mid = SimTime::from_nanos((w.start.as_nanos() + w.end.as_nanos()) / 2);
            assert_eq!(s.episode_at(mid), expected);
        }
        assert_eq!(seen, 3, "three episodes should be distinguishable");
        assert_eq!(s.episode_at(s.horizon), None);
    }

    #[test]
    fn calm_plan_is_empty_and_peak_matches_profile() {
        for p in StormProfile::builtin() {
            assert!(p.plan(StormIntensity::Calm, 99).is_empty());
            let peak = p.plan(StormIntensity::Peak, 99);
            for site in FaultSite::ALL {
                assert_eq!(peak.rate(site), p.peak[site.index()].clamp(0.0, 1.0));
            }
            let rising = p.plan(StormIntensity::Rising, 99);
            for site in FaultSite::ALL {
                assert!(rising.rate(site) <= peak.rate(site));
            }
        }
    }

    #[test]
    fn builtin_profiles_resolve_by_name() {
        for p in StormProfile::builtin() {
            assert_eq!(StormProfile::by_name(p.name).unwrap(), p);
        }
        assert!(StormProfile::by_name("haboob").is_none());
    }
}
