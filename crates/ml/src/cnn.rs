//! CNN training under CC (Sec. VII-B, Fig. 13): six CIFAR-100 models,
//! batch sizes 64 and 1024, FP32 / AMP / FP16 precision.
//!
//! The model is analytic but component-faithful: a training step pays
//! input upload (at the mode's transfer rate), per-kernel launch costs
//! (with the CC hypercall tax), host-side framework/dataloader work (with
//! the TD syscall tax) and GPU compute (scaled by batch efficiency and
//! precision). Constants are chosen so the aggregate lands on the paper's
//! reported means: ~24 % throughput drop at batch 64, ~7.3 % at 1024,
//! and a further FP16 training-time cut near 27.7 %.

use hcc_core::Precision;
use hcc_types::calib::Calibration;
use hcc_types::{Bandwidth, ByteSize, CcMode, SimDuration};

/// One of the six evaluated CNNs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CnnModel {
    /// Model name as in Fig. 13.
    pub name: &'static str,
    /// GPU compute per image at ideal utilization, FP32.
    pub per_image_us: f64,
    /// Kernel launches per training step (fwd + bwd + optimizer).
    pub kernels_per_step: u32,
    /// Parameter size (MiB) — reported for context.
    pub params_mib: u64,
}

/// The Fig. 13 model zoo.
pub const MODELS: [CnnModel; 6] = [
    CnnModel {
        name: "VGG16",
        per_image_us: 55.0,
        kernels_per_step: 120,
        params_mib: 528,
    },
    CnnModel {
        name: "ResNet50",
        per_image_us: 60.0,
        kernels_per_step: 180,
        params_mib: 98,
    },
    CnnModel {
        name: "MobileNetv2",
        per_image_us: 28.0,
        kernels_per_step: 160,
        params_mib: 14,
    },
    CnnModel {
        name: "SqueezeNet",
        per_image_us: 16.0,
        kernels_per_step: 90,
        params_mib: 5,
    },
    CnnModel {
        name: "Attention92",
        per_image_us: 85.0,
        kernels_per_step: 220,
        params_mib: 210,
    },
    CnnModel {
        name: "Inceptionv4",
        per_image_us: 95.0,
        kernels_per_step: 300,
        params_mib: 163,
    },
];

/// CIFAR-100 training-set size.
pub const DATASET_IMAGES: u64 = 50_000;
/// CIFAR-100 image payload (3x32x32 FP32).
pub const IMAGE_BYTES: ByteSize = ByteSize::bytes(3 * 32 * 32 * 4);
/// Epochs trained in the paper.
pub const EPOCHS: u64 = 200;

/// Training configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Batch size (the paper uses 64 and 1024).
    pub batch: u32,
    /// Precision scheme.
    pub precision: Precision,
    /// Confidential-computing mode.
    pub cc: CcMode,
}

/// Estimated training performance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainEstimate {
    /// Time per training step.
    pub step_time: SimDuration,
    /// Steps per epoch.
    pub steps_per_epoch: u64,
    /// Throughput in images per second.
    pub throughput: f64,
    /// Total training time for the full run.
    pub total_time: SimDuration,
}

/// The CNN training-time estimator.
#[derive(Debug, Clone)]
pub struct CnnEstimator {
    calib: Calibration,
    /// Host-side framework + dataloader work per step.
    host_per_step: SimDuration,
    /// Multiplier on host work inside a TD (syscall/dataloader tax).
    cc_host_mult: f64,
}

impl CnnEstimator {
    /// Creates an estimator with the paper calibration.
    pub fn new(calib: Calibration) -> Self {
        CnnEstimator {
            calib,
            host_per_step: SimDuration::from_micros_f64(1200.0),
            cc_host_mult: 2.2,
        }
    }

    /// Overrides the per-step host/framework cost (zero isolates the
    /// GPU-side CC taxes — used for cross-validation against the
    /// event-level simulator, which runs no Python).
    pub fn with_host_per_step(mut self, host: SimDuration) -> Self {
        self.host_per_step = host;
        self
    }

    /// Effective input-upload rate for a mode (pageable staging vs the
    /// encrypted bounce path).
    fn transfer_rate(&self, cc: CcMode) -> Bandwidth {
        let p = &self.calib.pcie;
        match cc {
            CcMode::Off => Bandwidth::serial_pipeline(&[p.host_staging, p.pinned_h2d]),
            CcMode::On => Bandwidth::serial_pipeline(&[
                Bandwidth::gb_per_s(hcc_types::calib::paper::AES_GCM_EMR_GBS),
                p.bounce_copy,
                p.pinned_h2d,
                p.gpu_crypto,
            ]),
        }
    }

    /// Per-launch cost for a mode (steady-state KLO incl. hypercall tax).
    fn launch_cost(&self, cc: CcMode) -> SimDuration {
        let lc = &self.calib.launch;
        let trap = match cc {
            CcMode::Off => self.calib.tdx.vmexit,
            CcMode::On => self.calib.tdx.hypercall(),
        };
        lc.klo_base + trap.scale(lc.doorbell_trap_prob)
    }

    /// GPU efficiency factor: small batches under-utilize the device.
    fn batch_factor(batch: u32) -> f64 {
        1.0 + 2.4 / (f64::from(batch)).sqrt()
    }

    /// Estimates one step and the whole training run.
    pub fn estimate(&self, model: &CnnModel, cfg: TrainConfig) -> TrainEstimate {
        let batch = f64::from(cfg.batch);
        // Compute.
        let compute_us = model.per_image_us
            * batch
            * Self::batch_factor(cfg.batch)
            * cfg.precision.compute_factor(cfg.batch);
        let compute = SimDuration::from_micros_f64(compute_us);
        // Input upload.
        let step_bytes = ByteSize::bytes(
            (IMAGE_BYTES.as_f64() * batch * cfg.precision.transfer_factor()) as u64,
        );
        let transfer = self.transfer_rate(cfg.cc).time_for(step_bytes);
        // Launches (AMP adds cast kernels).
        let kernels = match cfg.precision {
            Precision::Amp => (f64::from(model.kernels_per_step) * 1.35) as u64,
            _ => u64::from(model.kernels_per_step),
        };
        let launches = self.launch_cost(cfg.cc) * kernels;
        // Host-side framework work.
        let host = match cfg.cc {
            CcMode::Off => self.host_per_step,
            CcMode::On => self.host_per_step.scale(self.cc_host_mult),
        };
        let ket_factor = match cfg.cc {
            CcMode::Off => 1.0,
            CcMode::On => self.calib.gpu.cc_ket_factor,
        };
        let step_time = compute.scale(ket_factor) + transfer + launches + host;

        let steps_per_epoch = DATASET_IMAGES.div_ceil(u64::from(cfg.batch));
        let throughput = batch / step_time.as_secs_f64();
        let total_time = step_time * (steps_per_epoch * EPOCHS);
        TrainEstimate {
            step_time,
            steps_per_epoch,
            throughput,
            total_time,
        }
    }

    /// Mean CC throughput drop (fraction) across the model zoo for a
    /// batch size and precision.
    pub fn mean_cc_drop(&self, batch: u32, precision: Precision) -> f64 {
        let drops: Vec<f64> = MODELS
            .iter()
            .map(|m| {
                let base = self.estimate(
                    m,
                    TrainConfig {
                        batch,
                        precision,
                        cc: CcMode::Off,
                    },
                );
                let cc = self.estimate(
                    m,
                    TrainConfig {
                        batch,
                        precision,
                        cc: CcMode::On,
                    },
                );
                1.0 - cc.throughput / base.throughput
            })
            .collect();
        drops.iter().sum::<f64>() / drops.len() as f64
    }
}

impl Default for CnnEstimator {
    fn default() -> Self {
        CnnEstimator::new(Calibration::paper())
    }
}

hcc_types::impl_to_json!(CnnModel {
    name,
    per_image_us,
    kernels_per_step,
    params_mib,
});
hcc_types::impl_to_json!(TrainConfig {
    batch,
    precision,
    cc
});
hcc_types::impl_to_json!(TrainEstimate {
    step_time,
    steps_per_epoch,
    throughput,
    total_time,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> CnnEstimator {
        CnnEstimator::default()
    }

    #[test]
    fn batch64_drop_matches_paper_mean() {
        let drop = est().mean_cc_drop(64, Precision::Fp32);
        assert!((0.15..=0.33).contains(&drop), "batch-64 mean drop {drop}");
    }

    #[test]
    fn batch1024_drop_shrinks_toward_paper_mean() {
        let e = est();
        let d64 = e.mean_cc_drop(64, Precision::Fp32);
        let d1024 = e.mean_cc_drop(1024, Precision::Fp32);
        assert!(d1024 < d64 * 0.6, "1024 drop {d1024} vs 64 drop {d64}");
        assert!(
            (0.03..=0.14).contains(&d1024),
            "batch-1024 mean drop {d1024}"
        );
    }

    #[test]
    fn per_model_drops_span_a_range() {
        let e = est();
        let drops: Vec<f64> = MODELS
            .iter()
            .map(|m| {
                let base = e.estimate(
                    m,
                    TrainConfig {
                        batch: 64,
                        precision: Precision::Fp32,
                        cc: CcMode::Off,
                    },
                );
                let cc = e.estimate(
                    m,
                    TrainConfig {
                        batch: 64,
                        precision: Precision::Fp32,
                        cc: CcMode::On,
                    },
                );
                1.0 - cc.throughput / base.throughput
            })
            .collect();
        let max = drops.iter().copied().fold(0.0, f64::max);
        let min = drops.iter().copied().fold(1.0, f64::min);
        assert!(max > 0.25, "max drop {max}");
        assert!(min < 0.20, "min drop {min}");
    }

    #[test]
    fn amp_hurts_small_batch_helps_large_batch() {
        let e = est();
        let m = &MODELS[1]; // ResNet50
        let fp32_64 = e.estimate(
            m,
            TrainConfig {
                batch: 64,
                precision: Precision::Fp32,
                cc: CcMode::On,
            },
        );
        let amp_64 = e.estimate(
            m,
            TrainConfig {
                batch: 64,
                precision: Precision::Amp,
                cc: CcMode::On,
            },
        );
        assert!(
            amp_64.throughput < fp32_64.throughput,
            "AMP must regress at batch 64"
        );
        let fp32_1024 = e.estimate(
            m,
            TrainConfig {
                batch: 1024,
                precision: Precision::Fp32,
                cc: CcMode::On,
            },
        );
        let amp_1024 = e.estimate(
            m,
            TrainConfig {
                batch: 1024,
                precision: Precision::Amp,
                cc: CcMode::On,
            },
        );
        assert!(
            amp_1024.throughput > fp32_1024.throughput,
            "AMP must help at batch 1024"
        );
    }

    #[test]
    fn fp16_cuts_training_time_at_large_batch() {
        let e = est();
        let cuts: Vec<f64> = MODELS
            .iter()
            .map(|m| {
                let fp32 = e.estimate(
                    m,
                    TrainConfig {
                        batch: 1024,
                        precision: Precision::Fp32,
                        cc: CcMode::On,
                    },
                );
                let fp16 = e.estimate(
                    m,
                    TrainConfig {
                        batch: 1024,
                        precision: Precision::Fp16,
                        cc: CcMode::On,
                    },
                );
                1.0 - fp16.total_time.as_secs_f64() / fp32.total_time.as_secs_f64()
            })
            .collect();
        let mean = cuts.iter().sum::<f64>() / cuts.len() as f64;
        assert!((0.18..=0.40).contains(&mean), "FP16 mean time cut {mean}");
    }

    #[test]
    fn training_time_scales_with_epochs_and_dataset() {
        let e = est();
        let m = &MODELS[0];
        let r = e.estimate(
            m,
            TrainConfig {
                batch: 64,
                precision: Precision::Fp32,
                cc: CcMode::Off,
            },
        );
        assert_eq!(r.steps_per_epoch, DATASET_IMAGES.div_ceil(64));
        let expected = r.step_time * (r.steps_per_epoch * EPOCHS);
        assert_eq!(r.total_time, expected);
        assert!(r.throughput > 1000.0, "CIFAR throughput {}", r.throughput);
    }
}
