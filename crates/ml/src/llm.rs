//! LLM inference under CC (Sec. VII-B, Fig. 14): Llama-3-8B decode
//! throughput across serving backends (HuggingFace vs vLLM), precisions
//! (BF16 vs AWQ-int4) and batch sizes, with and without CC.
//!
//! Decode is modelled as the classic roofline: a step reads the weights
//! once (memory-bound term) or is bounded by batched FLOPs (compute
//! term), plus a backend-dependent per-step overhead. CC taxes the
//! host-side overhead and the launch path; vLLM's CUDA-graph execution
//! keeps its launch count (and hence its CC tax) low — the reason it
//! "remains robust with CC enabled" (Observation 9).

use hcc_types::calib::Calibration;
use hcc_types::{CcMode, SimDuration};

/// Serving backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// HuggingFace transformers (`model.generate`).
    HuggingFace,
    /// vLLM with paged attention and CUDA graphs.
    Vllm,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::HuggingFace => f.write_str("HF"),
            Backend::Vllm => f.write_str("vLLM"),
        }
    }
}

/// Model precision for inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LlmPrecision {
    /// 16-bit weights (the unquantized configuration).
    Bf16,
    /// Activation-aware 4-bit weight quantization.
    Awq,
}

impl std::fmt::Display for LlmPrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmPrecision::Bf16 => f.write_str("BF16"),
            LlmPrecision::Awq => f.write_str("AWQ"),
        }
    }
}

/// One inference configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlmConfig {
    /// Serving backend.
    pub backend: Backend,
    /// Weight precision.
    pub precision: LlmPrecision,
    /// Concurrent request batch size.
    pub batch: u32,
    /// Confidential computing mode.
    pub cc: CcMode,
}

/// Llama-3-8B decode-throughput estimator.
#[derive(Debug, Clone)]
pub struct LlmEstimator {
    calib: Calibration,
    /// HBM3 bandwidth (GB/s) bounding the weight-read term.
    hbm_gbs: f64,
    /// BF16 weight footprint (bytes).
    weights_bf16: f64,
    /// AWQ weight footprint (bytes).
    weights_awq: f64,
    /// Compute-bound time per sequence per token.
    flop_per_seq: SimDuration,
}

impl LlmEstimator {
    /// Creates an estimator with H100-NVL-class constants.
    pub fn new(calib: Calibration) -> Self {
        LlmEstimator {
            calib,
            hbm_gbs: 3350.0,
            weights_bf16: 16.0e9,
            weights_awq: 5.6e9,
            flop_per_seq: SimDuration::from_micros_f64(250.0),
        }
    }

    fn step_overhead(&self, backend: Backend, cc: CcMode) -> SimDuration {
        // Framework work per decode step + launch path. vLLM's CUDA
        // graphs collapse hundreds of per-layer launches into a few.
        let (host, launches) = match backend {
            Backend::HuggingFace => (SimDuration::from_micros_f64(9_000.0), 320u64),
            Backend::Vllm => (SimDuration::from_micros_f64(1_200.0), 12u64),
        };
        let lc = &self.calib.launch;
        let trap = match cc {
            CcMode::Off => self.calib.tdx.vmexit,
            CcMode::On => self.calib.tdx.hypercall(),
        };
        let launch = (lc.klo_base + trap.scale(lc.doorbell_trap_prob)) * launches;
        let host = match cc {
            CcMode::Off => host,
            // TD syscall/paging tax on the Python/serving host loop.
            CcMode::On => host.scale(1.35),
        };
        host + launch
    }

    fn weight_read(&self, precision: LlmPrecision) -> SimDuration {
        let (bytes, penalty) = match precision {
            LlmPrecision::Bf16 => (self.weights_bf16, 1.0),
            // Dequantization adds work per weight read.
            LlmPrecision::Awq => (self.weights_awq, 1.12),
        };
        SimDuration::from_secs_f64(bytes / (self.hbm_gbs * 1e9) * penalty)
    }

    fn compute_term(&self, precision: LlmPrecision, batch: u32) -> SimDuration {
        let factor = match precision {
            LlmPrecision::Bf16 => 1.0,
            // Int4 GEMMs dequantize on the fly: slower when compute-bound.
            LlmPrecision::Awq => 1.18,
        };
        self.flop_per_seq.scale(f64::from(batch) * factor)
    }

    /// Decode throughput (tokens/second) for a configuration.
    pub fn throughput(&self, cfg: LlmConfig) -> f64 {
        let step = self.step_overhead(cfg.backend, cfg.cc)
            + self
                .weight_read(cfg.precision)
                .max(self.compute_term(cfg.precision, cfg.batch));
        // Batching efficiency: HF pads static batches; vLLM packs them.
        let utilization = match cfg.backend {
            Backend::HuggingFace => 0.68,
            Backend::Vllm => 0.94,
        };
        f64::from(cfg.batch) * utilization / step.as_secs_f64()
    }

    /// Fig. 14's metric: throughput of a vLLM configuration normalized to
    /// the HF / BF16 / CC-off baseline at the same batch size.
    pub fn vllm_speedup(&self, precision: LlmPrecision, batch: u32, cc: CcMode) -> f64 {
        let baseline = self.throughput(LlmConfig {
            backend: Backend::HuggingFace,
            precision: LlmPrecision::Bf16,
            batch,
            cc: CcMode::Off,
        });
        let v = self.throughput(LlmConfig {
            backend: Backend::Vllm,
            precision,
            batch,
            cc,
        });
        v / baseline
    }
}

impl Default for LlmEstimator {
    fn default() -> Self {
        LlmEstimator::new(Calibration::paper())
    }
}

/// The batch sizes Fig. 14 sweeps.
pub const FIG14_BATCHES: [u32; 6] = [1, 4, 8, 16, 64, 128];

/// A single inference request (for end-to-end latency studies beyond the
/// paper's throughput grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Tokens to generate.
    pub gen_tokens: u32,
}

/// End-to-end latency estimate for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestLatency {
    /// Encrypted (or plain) prompt upload over PCIe.
    pub upload: SimDuration,
    /// Prefill (prompt processing, compute-bound).
    pub prefill: SimDuration,
    /// Decode (one step per generated token).
    pub decode: SimDuration,
}

impl RequestLatency {
    /// Total request latency.
    pub fn total(&self) -> SimDuration {
        self.upload + self.prefill + self.decode
    }

    /// Time to first token (upload + prefill + one decode step).
    pub fn ttft(&self, one_step: SimDuration) -> SimDuration {
        self.upload + self.prefill + one_step
    }
}

impl LlmEstimator {
    /// Per-prompt-token prefill compute (compute-bound, batch-friendly).
    fn prefill_per_token(&self, precision: LlmPrecision) -> SimDuration {
        let factor = match precision {
            LlmPrecision::Bf16 => 1.0,
            LlmPrecision::Awq => 1.10,
        };
        // Prefill processes tokens in parallel at high arithmetic
        // intensity: far cheaper per token than decode.
        SimDuration::from_micros_f64(18.0 * factor)
    }

    /// Effective prompt-upload rate for a mode: base PCIe staging vs the
    /// encrypted CC pipeline (the PipeLLM problem statement).
    fn upload_rate(&self, cc: CcMode) -> hcc_types::Bandwidth {
        let p = &self.calib.pcie;
        match cc {
            CcMode::Off => hcc_types::Bandwidth::serial_pipeline(&[p.host_staging, p.pinned_h2d]),
            CcMode::On => hcc_types::Bandwidth::serial_pipeline(&[
                hcc_types::Bandwidth::gb_per_s(hcc_types::calib::paper::AES_GCM_EMR_GBS),
                p.bounce_copy,
                p.pinned_h2d,
                p.gpu_crypto,
            ]),
        }
    }

    /// End-to-end latency of one request on an otherwise idle server
    /// (batch = 1 decode).
    pub fn request_latency(&self, cfg: LlmConfig, request: Request) -> RequestLatency {
        // Prompt payload: token ids + embeddings-side metadata (~6 B/token
        // on the wire; KV stays on-device).
        let prompt_bytes = hcc_types::ByteSize::bytes(u64::from(request.prompt_tokens) * 6 + 4096);
        let upload = self.upload_rate(cfg.cc).time_for(prompt_bytes)
            + match cfg.cc {
                CcMode::Off => SimDuration::from_micros_f64(20.0),
                // Bounce setup + DMA-map hypercalls on the prompt path.
                CcMode::On => SimDuration::from_micros_f64(60.0),
            };
        let prefill = self
            .prefill_per_token(cfg.precision)
            .scale(f64::from(request.prompt_tokens))
            + self.step_overhead(cfg.backend, cfg.cc);
        let step = self.step_overhead(cfg.backend, cfg.cc)
            + self
                .weight_read(cfg.precision)
                .max(self.compute_term(cfg.precision, 1));
        let decode = step * u64::from(request.gen_tokens);
        RequestLatency {
            upload,
            prefill,
            decode,
        }
    }
}

macro_rules! display_to_json {
    ($($ty:ty),+) => {
        $(impl hcc_types::json::ToJson for $ty {
            /// Serializes as the `Display` label.
            fn to_json(&self) -> hcc_types::json::Json {
                hcc_types::json::Json::Str(self.to_string())
            }
        })+
    };
}
display_to_json!(Backend, LlmPrecision);

hcc_types::impl_to_json!(LlmConfig {
    backend,
    precision,
    batch,
    cc
});
hcc_types::impl_to_json!(Request {
    prompt_tokens,
    gen_tokens
});
hcc_types::impl_to_json!(RequestLatency {
    upload,
    prefill,
    decode
});

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> LlmEstimator {
        LlmEstimator::default()
    }

    #[test]
    fn vllm_beats_hf_in_every_configuration() {
        let e = est();
        for batch in FIG14_BATCHES {
            for cc in CcMode::ALL {
                for precision in [LlmPrecision::Bf16, LlmPrecision::Awq] {
                    let s = e.vllm_speedup(precision, batch, cc);
                    assert!(s > 1.0, "vLLM {precision} b{batch} [{cc}]: {s}");
                }
            }
        }
    }

    #[test]
    fn cc_on_is_slower_than_cc_off() {
        let e = est();
        for batch in FIG14_BATCHES {
            for precision in [LlmPrecision::Bf16, LlmPrecision::Awq] {
                for backend in [Backend::HuggingFace, Backend::Vllm] {
                    let off = e.throughput(LlmConfig {
                        backend,
                        precision,
                        batch,
                        cc: CcMode::Off,
                    });
                    let on = e.throughput(LlmConfig {
                        backend,
                        precision,
                        batch,
                        cc: CcMode::On,
                    });
                    assert!(on < off, "{backend} {precision} b{batch}");
                }
            }
        }
    }

    #[test]
    fn awq_wins_small_batch_bf16_wins_large_batch() {
        let e = est();
        for cc in CcMode::ALL {
            let small_awq = e.throughput(LlmConfig {
                backend: Backend::Vllm,
                precision: LlmPrecision::Awq,
                batch: 4,
                cc,
            });
            let small_bf16 = e.throughput(LlmConfig {
                backend: Backend::Vllm,
                precision: LlmPrecision::Bf16,
                batch: 4,
                cc,
            });
            assert!(
                small_awq > small_bf16,
                "[{cc}] AWQ must win memory-bound decode"
            );
            for batch in [64, 128] {
                let large_awq = e.throughput(LlmConfig {
                    backend: Backend::Vllm,
                    precision: LlmPrecision::Awq,
                    batch,
                    cc,
                });
                let large_bf16 = e.throughput(LlmConfig {
                    backend: Backend::Vllm,
                    precision: LlmPrecision::Bf16,
                    batch,
                    cc,
                });
                assert!(
                    large_bf16 > large_awq,
                    "[{cc}] b{batch}: BF16 must win compute-bound"
                );
            }
        }
    }

    #[test]
    fn throughput_grows_with_batch() {
        let e = est();
        let mut last = 0.0;
        for batch in FIG14_BATCHES {
            let t = e.throughput(LlmConfig {
                backend: Backend::Vllm,
                precision: LlmPrecision::Bf16,
                batch,
                cc: CcMode::On,
            });
            assert!(t > last, "b{batch}: {t} <= {last}");
            last = t;
        }
    }

    #[test]
    fn cc_hurts_hf_more_than_vllm() {
        // vLLM's graph launches shrink the CC launch tax (Observation 9's
        // "remains robust with CC enabled").
        let e = est();
        let penalty = |backend| {
            let off = e.throughput(LlmConfig {
                backend,
                precision: LlmPrecision::Bf16,
                batch: 8,
                cc: CcMode::Off,
            });
            let on = e.throughput(LlmConfig {
                backend,
                precision: LlmPrecision::Bf16,
                batch: 8,
                cc: CcMode::On,
            });
            1.0 - on / off
        };
        assert!(penalty(Backend::HuggingFace) > penalty(Backend::Vllm));
    }

    #[test]
    fn request_latency_decomposes_and_cc_taxes_every_phase() {
        let e = est();
        let req = Request {
            prompt_tokens: 2048,
            gen_tokens: 128,
        };
        let lat = |cc| {
            e.request_latency(
                LlmConfig {
                    backend: Backend::Vllm,
                    precision: LlmPrecision::Bf16,
                    batch: 1,
                    cc,
                },
                req,
            )
        };
        let off = lat(CcMode::Off);
        let on = lat(CcMode::On);
        assert!(on.upload > off.upload, "encrypted prompt upload");
        assert!(on.prefill > off.prefill, "launch-taxed prefill");
        assert!(on.decode > off.decode, "launch-taxed decode");
        assert!(on.total() > off.total());
        // Decode dominates a 128-token generation.
        assert!(on.decode > on.prefill);
        // TTFT is below total and above upload+prefill.
        let step = on.decode / 128;
        assert!(on.ttft(step) < on.total());
        assert!(on.ttft(step) > on.upload + on.prefill);
    }

    #[test]
    fn long_prompts_amplify_the_cc_upload_tax() {
        let e = est();
        let tax = |prompt_tokens| {
            let req = Request {
                prompt_tokens,
                gen_tokens: 1,
            };
            let cfg = |cc| LlmConfig {
                backend: Backend::Vllm,
                precision: LlmPrecision::Bf16,
                batch: 1,
                cc,
            };
            let off = e.request_latency(cfg(CcMode::Off), req).upload;
            let on = e.request_latency(cfg(CcMode::On), req).upload;
            on.as_secs_f64() - off.as_secs_f64()
        };
        assert!(tax(32_768) > tax(128) * 2.0);
    }

    #[test]
    fn single_stream_throughput_in_sane_range() {
        // Llama-3-8B BF16 single-request decode on H100-class HW is a
        // couple hundred tokens/s.
        let t = est().throughput(LlmConfig {
            backend: Backend::Vllm,
            precision: LlmPrecision::Bf16,
            batch: 1,
            cc: CcMode::Off,
        });
        assert!((80.0..400.0).contains(&t), "tokens/s {t}");
    }
}
