//! # hcc-ml
//!
//! The Sec. VII-B machine-learning workloads under confidential
//! computing:
//!
//! * [`cnn`] — six CIFAR-100 CNNs (Fig. 13): training throughput and
//!   time across batch sizes and FP32 / AMP / FP16 precision, with the
//!   CC taxes (encrypted input upload, hypercall-laden launches, TD host
//!   overhead) applied component by component.
//! * [`llm`] — Llama-3-8B decode (Fig. 14): HuggingFace vs vLLM serving,
//!   BF16 vs AWQ weights, the batch-size crossover, and CC's
//!   backend-dependent penalty.
//!
//! ```
//! use hcc_ml::cnn::{CnnEstimator, TrainConfig, MODELS};
//! use hcc_ml::llm::{Backend, LlmConfig, LlmEstimator, LlmPrecision};
//! use hcc_core::Precision;
//! use hcc_types::CcMode;
//!
//! let cnn = CnnEstimator::default();
//! let drop = cnn.mean_cc_drop(64, Precision::Fp32);
//! assert!(drop > 0.1); // CC costs real throughput at batch 64
//!
//! let llm = LlmEstimator::default();
//! let s = llm.vllm_speedup(LlmPrecision::Awq, 8, CcMode::On);
//! assert!(s > 1.0); // vLLM beats the HF baseline even under CC
//! # let _ = (MODELS, TrainConfig { batch: 64, precision: Precision::Fp32, cc: CcMode::Off });
//! # let _ = (Backend::Vllm, LlmConfig { backend: Backend::Vllm, precision: LlmPrecision::Bf16, batch: 1, cc: CcMode::Off });
//! ```

pub mod cnn;
pub mod cnn_sim;
pub mod llm;

pub use cnn::{CnnEstimator, CnnModel, TrainConfig, TrainEstimate, MODELS};
pub use cnn_sim::{simulate_training_steps, SimulatedTraining};
pub use llm::{Backend, LlmConfig, LlmEstimator, LlmPrecision, FIG14_BATCHES};
