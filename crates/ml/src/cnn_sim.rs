//! Cross-validation: drive a real [`CudaContext`] through CNN training
//! steps and check the event-level simulator agrees with the analytic
//! estimator of [`crate::cnn`]. This is the lab's internal consistency
//! proof — two independently built models of the same system must tell
//! the same story.

use hcc_core::Precision;
use hcc_runtime::{CudaContext, KernelDesc, SimConfig};
use hcc_trace::KernelId;
use hcc_types::{ByteSize, SimDuration};

use crate::cnn::{CnnModel, TrainConfig, IMAGE_BYTES};

/// Result of simulating training steps through the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulatedTraining {
    /// Steps simulated.
    pub steps: u32,
    /// Mean time per step (warm steps only; the first step pays
    /// first-launch costs and is excluded, as profilers do).
    pub step_time: SimDuration,
    /// Total time including the warm-up step.
    pub total: SimDuration,
}

/// Drives `steps + 1` training steps of `model` through the event-level
/// simulator (one warm-up step, then `steps` measured).
///
/// Each step uploads the batch, launches the model's kernel train
/// (compute split evenly across `kernels_per_step`), and synchronizes —
/// the copy-then-execute loop every framework runs.
///
/// # Panics
/// Panics if `steps` is zero or allocation fails (sizes here are far
/// below HBM capacity).
pub fn simulate_training_steps(
    model: &CnnModel,
    cfg: TrainConfig,
    steps: u32,
) -> SimulatedTraining {
    assert!(steps > 0, "need at least one measured step");
    let mut ctx = CudaContext::new(SimConfig::new(cfg.cc));
    let stream = ctx.default_stream();
    let batch_bytes = ByteSize::bytes(
        (IMAGE_BYTES.as_f64() * f64::from(cfg.batch) * cfg.precision.transfer_factor()) as u64,
    );
    let host = ctx
        .malloc_host(
            batch_bytes.max(ByteSize::kib(4)),
            hcc_types::HostMemKind::Pageable,
        )
        .expect("host staging buffer");
    let dev = ctx
        .malloc_device(batch_bytes.max(ByteSize::kib(4)))
        .expect("device batch buffer");

    let kernels = match cfg.precision {
        Precision::Amp => (f64::from(model.kernels_per_step) * 1.35) as u32,
        _ => model.kernels_per_step,
    };
    let compute_us = model.per_image_us
        * f64::from(cfg.batch)
        * (1.0 + 2.4 / f64::from(cfg.batch).sqrt())
        * cfg.precision.compute_factor(cfg.batch);
    let per_kernel = SimDuration::from_micros_f64(compute_us / f64::from(kernels));

    let mut step_starts = Vec::with_capacity(steps as usize + 2);
    for step in 0..=steps {
        step_starts.push(ctx.now());
        ctx.memcpy_h2d(dev, host, batch_bytes)
            .expect("batch upload");
        for k in 0..kernels {
            let desc = KernelDesc::new(KernelId(k), per_kernel);
            ctx.launch_kernel(&desc, stream).expect("layer kernel");
        }
        ctx.synchronize();
        let _ = step;
    }
    step_starts.push(ctx.now());
    // Mean over warm steps (skip step 0).
    let warm_total = *step_starts.last().expect("pushed") - step_starts[1];
    SimulatedTraining {
        steps,
        step_time: warm_total / u64::from(steps),
        total: ctx.now().saturating_since(hcc_types::SimTime::ZERO),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnn::{CnnEstimator, MODELS};
    use hcc_types::CcMode;

    /// The event-level simulator and the analytic estimator must agree on
    /// the *CC throughput drop* — the quantity Fig. 13 reports — within a
    /// modest tolerance, for every model.
    ///
    /// The estimator's host/framework term (dataloader, Python) is zeroed
    /// here: the bare runtime loop executes no framework code, so the
    /// comparison isolates the GPU-side taxes both models share
    /// (encrypted transfer + hypercall-laden launches).
    #[test]
    fn simulated_and_analytic_cc_drops_agree() {
        let est = CnnEstimator::default().with_host_per_step(hcc_types::SimDuration::ZERO);
        for m in &MODELS {
            let sim_drop = {
                let base = simulate_training_steps(
                    m,
                    TrainConfig {
                        batch: 64,
                        precision: Precision::Fp32,
                        cc: CcMode::Off,
                    },
                    8,
                );
                let cc = simulate_training_steps(
                    m,
                    TrainConfig {
                        batch: 64,
                        precision: Precision::Fp32,
                        cc: CcMode::On,
                    },
                    8,
                );
                1.0 - base.step_time.as_secs_f64() / cc.step_time.as_secs_f64()
            };
            let ana_drop = {
                let base = est.estimate(
                    m,
                    TrainConfig {
                        batch: 64,
                        precision: Precision::Fp32,
                        cc: CcMode::Off,
                    },
                );
                let cc = est.estimate(
                    m,
                    TrainConfig {
                        batch: 64,
                        precision: Precision::Fp32,
                        cc: CcMode::On,
                    },
                );
                1.0 - base.step_time.as_secs_f64() / cc.step_time.as_secs_f64()
            };
            // Same direction, same order of magnitude.
            assert!(sim_drop > 0.0, "{}: simulator shows no CC drop", m.name);
            assert!(
                (sim_drop - ana_drop).abs() < 0.15,
                "{}: simulated drop {sim_drop:.3} vs analytic {ana_drop:.3}",
                m.name
            );
        }
    }

    #[test]
    fn warm_steps_are_cheaper_than_cold() {
        let m = &MODELS[1];
        let r = simulate_training_steps(
            m,
            TrainConfig {
                batch: 64,
                precision: Precision::Fp32,
                cc: CcMode::On,
            },
            4,
        );
        // Total includes the cold step; 5 steps at warm rate would be less.
        assert!(r.total > r.step_time * 5);
        assert_eq!(r.steps, 4);
    }

    #[test]
    fn larger_batches_raise_simulated_throughput() {
        let m = &MODELS[0];
        let tput = |batch: u32| {
            let r = simulate_training_steps(
                m,
                TrainConfig {
                    batch,
                    precision: Precision::Fp32,
                    cc: CcMode::On,
                },
                4,
            );
            f64::from(batch) / r.step_time.as_secs_f64()
        };
        assert!(tput(1024) > tput(64));
    }
}
