//! The functional side of the substrate: demonstrate that under CC the
//! data really is protected at every hop — TD-private memory is
//! ciphertext on the bus, the PCIe payload is AES-GCM sealed and
//! tamper-evident, and GPU HBM (trusted per the threat model) holds
//! plaintext again.
//!
//! ```sh
//! cargo run --example secure_dataflow
//! ```

use hcc::crypto::gcm::AesGcm;
use hcc::prelude::*;
use hcc::tee::PrivateMemory;

fn main() {
    println!("hcc secure dataflow — following one tensor through the CC pipeline\n");
    let secret = b"patient-record-embedding: [0.12, -0.98, 0.44, ...]";

    // Hop 1: the tensor sits in TD-private memory. The guest reads
    // plaintext; the memory bus carries TME-MK (AES-XTS) ciphertext.
    let mut td_mem = PrivateMemory::new(8192, [0x1D; 16]);
    td_mem.write(0, secret).expect("write into TD memory");
    let guest_view = td_mem.read(0, secret.len()).expect("guest read");
    let bus_view = td_mem.bus_view(0, secret.len()).expect("bus read");
    println!("TD private memory:");
    println!("  guest sees : {}", String::from_utf8_lossy(&guest_view));
    println!(
        "  bus carries: {} (TME-MK ciphertext)",
        hex_preview(&bus_view)
    );
    assert_eq!(guest_view, secret);
    assert_ne!(bus_view, secret);

    // Hop 2: staging for DMA converts pages to shared — now the
    // hypervisor legitimately sees the (GCM-sealed) bounce payload.
    let mut staged = secret.to_vec();
    let gcm = AesGcm::new(&[0x2A; 16]).expect("session key");
    let tag = gcm.encrypt(&[0x01; 12], b"dma-channel-7", &mut staged);
    println!("\nbounce buffer (hypervisor-visible):");
    println!("  payload    : {} (AES-GCM)", hex_preview(&staged));
    println!("  tag        : {}", hex_preview(&tag));

    // A malicious hypervisor flips one bit in transit...
    let mut tampered = staged.clone();
    tampered[3] ^= 0x80;
    let verdict = gcm.decrypt(&[0x01; 12], b"dma-channel-7", &mut tampered, &tag);
    println!("  tampered copy rejected by the GPU: {verdict:?}");
    assert!(verdict.is_err());

    // Hop 3: the full runtime path — upload through the simulated CC
    // pipeline and read HBM directly (plaintext; HBM is in the TCB).
    let mut ctx = CudaContext::new(SimConfig::new(CcMode::On));
    let dev = ctx
        .malloc_device(ByteSize::kib(4))
        .expect("device allocation");
    let elapsed = ctx.upload_bytes(dev, secret).expect("CC upload");
    let hbm = ctx
        .gpu()
        .hbm()
        .read(dev, 0, secret.len() as u64)
        .expect("hbm read");
    println!("\nGPU HBM after encrypted upload ({elapsed} of virtual time):");
    println!("  hbm holds  : {}", String::from_utf8_lossy(&hbm));
    assert_eq!(hbm, secret);

    let counters = ctx.td_counters();
    println!(
        "\nTD transition bill for this upload: {} hypercalls, {} pages converted, {} in transitions",
        counters.hypercalls, counters.pages_converted, counters.transition_time
    );
}

fn hex_preview(bytes: &[u8]) -> String {
    let head: Vec<String> = bytes.iter().take(12).map(|b| format!("{b:02x}")).collect();
    format!("{}…", head.join(""))
}
