//! Cold starts in confidential serving: before the first CUDA call can
//! touch the GPU, the TD must attest the device over SPDM and derive
//! session keys. This example prices that handshake, shows the per-step
//! breakdown, and compares a cold confidential context against a warm one
//! — the number a serverless confidential-inference operator cares about.
//!
//! ```sh
//! cargo run --example cold_start
//! ```

use hcc::prelude::*;
use hcc::runtime::KernelDesc;
use hcc::tee::{SpdmSession, TdContext};
use hcc::trace::KernelId;
use hcc::types::calib::TdxCalib;

fn first_inference(cfg: SimConfig) -> SimTime {
    let mut ctx = CudaContext::new(cfg);
    let size = ByteSize::mib(64); // model shard
    let h = ctx
        .malloc_host(size, HostMemKind::Pageable)
        .expect("host staging");
    let d = ctx.malloc_device(size).expect("device weights");
    ctx.memcpy_h2d(d, h, size).expect("weight upload");
    ctx.launch_kernel(
        &KernelDesc::new(KernelId(0), SimDuration::millis(4)),
        ctx.default_stream(),
    )
    .expect("first forward pass");
    ctx.synchronize();
    ctx.now()
}

fn main() {
    println!("hcc cold start — what SPDM attestation costs a confidential endpoint\n");

    // The handshake itself, step by step.
    let mut td = TdContext::new(CcMode::On, TdxCalib::default());
    let session = SpdmSession::establish(&mut td);
    println!("SPDM handshake breakdown:");
    for (step, cost) in &session.steps {
        println!("  {step:<22?} {cost}");
    }
    println!("  {:<22} {}\n", "TOTAL", session.total_time);

    // End-to-end: time to the first completed inference.
    let warm = first_inference(SimConfig::new(CcMode::On));
    let cold = first_inference(SimConfig::new(CcMode::On).with_attestation());
    let base = first_inference(SimConfig::new(CcMode::Off));
    println!("time to first inference (64 MiB weights + one 4 ms kernel):");
    println!("  base (no CC)          {base}");
    println!("  CC, session warm      {warm}");
    println!("  CC, cold (attesting)  {cold}");
    println!(
        "\nthe handshake adds {} — amortized to nothing on a long-lived server,\n\
         but real money when every request spins up a fresh TD.",
        cold.saturating_since(warm)
    );
}
