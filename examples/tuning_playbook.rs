//! The CC tuning playbook: take a launch-bound app (3dconv-style), show
//! why it suffers under CC, then apply the paper's Sec. VII mitigations —
//! kernel fusion, stream overlap, and parallel transfer encryption — and
//! measure each one.
//!
//! ```sh
//! cargo run --example tuning_playbook
//! ```

use hcc::core::{FusionPlanner, KlrAnalysis, OverlapPlanner};
use hcc::prelude::*;
use hcc::types::calib::Calibration;
use hcc::workloads::{micro, runner, suites};

fn main() {
    println!("hcc tuning playbook — rescuing a launch-bound app under CC\n");

    // Step 1: diagnose. Run 3dconv in both modes and classify it.
    let spec = suites::by_name("3dconv").expect("3dconv exists");
    let base = runner::run(&spec, SimConfig::new(CcMode::Off)).expect("base run");
    let cc = runner::run(&spec, SimConfig::new(CcMode::On)).expect("cc run");
    let analysis = KlrAnalysis::of(&cc.timeline.launch_metrics());
    println!(
        "3dconv: KLR = {:.2} ({:?}) over {} launches",
        analysis.klr, analysis.class, analysis.launches
    );
    println!(
        "  end-to-end: base {} -> cc {} (x{:.2})",
        base.end,
        cc.end,
        (cc.end.saturating_since(SimTime::ZERO)) / (base.end.saturating_since(SimTime::ZERO))
    );
    println!(
        "  predicted sensitivity to the CC launch tax (x1.42 KLO): x{:.2}\n",
        analysis.predicted_slowdown(1.42)
    );

    // Step 2: fusion. Ask the planner how far to fuse the 254 launches.
    let planner = FusionPlanner::new(Calibration::paper(), CcMode::On);
    let total_ket = spec.nominal_ket();
    let plan = planner.recommend(total_ket, 254);
    println!(
        "fusion planner: best split = {} launches (est. span {}), vs 254 unfused",
        plan.best.launches, plan.best.est_span
    );
    let unfused = micro::run_fusion_sweep(SimConfig::new(CcMode::On), total_ket, 254);
    let fused = micro::run_fusion_sweep(
        SimConfig::new(CcMode::On),
        total_ket,
        plan.best.launches.max(1),
    );
    println!(
        "  simulated: unfused span {}, planner's split {} -> saves {:.1}%\n",
        unfused.span,
        fused.span,
        (1.0 - fused.span.as_secs_f64() / unfused.span.as_secs_f64()) * 100.0
    );

    // Step 3: overlap. Hide the encrypted transfer behind compute.
    let overlap = OverlapPlanner::new(Calibration::paper(), CcMode::On);
    let oplan = overlap.recommend(ByteSize::mib(512), SimDuration::millis(10), 64);
    println!(
        "overlap planner: {} streams -> estimated x{:.2} over serial",
        oplan.best.streams,
        oplan.best.speedup()
    );
    let measured = micro::run_overlap(
        SimConfig::new(CcMode::On),
        oplan.best.streams,
        ByteSize::mib(512),
        SimDuration::millis(10),
    )
    .expect("overlap run");
    println!("  simulated: x{:.2} over serial\n", measured.speedup());

    // Step 4: parallel encryption (the Sec. VIII runtime-library trick).
    for workers in [1u32, 4, 8] {
        let mut ctx = CudaContext::new(SimConfig::new(CcMode::On).with_crypto_workers(workers));
        let h = ctx
            .malloc_host(ByteSize::mib(256), HostMemKind::Pageable)
            .expect("host alloc");
        let d = ctx.malloc_device(ByteSize::mib(256)).expect("device alloc");
        let t = ctx.memcpy_h2d(d, h, ByteSize::mib(256)).expect("copy");
        let gbs = ByteSize::mib(256).as_gb_f64() / t.as_secs_f64();
        println!("crypto workers = {workers}: 256 MiB upload in {t} ({gbs:.2} GB/s)");
    }
    println!("\nmoral: fuse the launches, overlap the copies, parallelize the AES.");
}
