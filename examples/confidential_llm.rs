//! Confidential LLM serving: should you enable CC for your Llama-3-8B
//! endpoint, and how should you configure it?
//!
//! Walks the Fig. 14 decision space — backend, quantization, batch size —
//! and prints the throughput cost of confidentiality for each choice.
//!
//! ```sh
//! cargo run --example confidential_llm
//! ```

use hcc::ml::llm::{Backend, LlmConfig, LlmEstimator, LlmPrecision, FIG14_BATCHES};
use hcc::types::CcMode;

fn main() {
    let est = LlmEstimator::default();

    println!("Llama-3-8B decode throughput (tokens/s) — CC cost per configuration\n");
    println!(
        "{:<10} {:<6} {:>6} {:>12} {:>12} {:>9}",
        "backend", "prec", "batch", "CC-off", "CC-on", "CC tax"
    );
    for backend in [Backend::HuggingFace, Backend::Vllm] {
        for precision in [LlmPrecision::Bf16, LlmPrecision::Awq] {
            for batch in FIG14_BATCHES {
                let off = est.throughput(LlmConfig {
                    backend,
                    precision,
                    batch,
                    cc: CcMode::Off,
                });
                let on = est.throughput(LlmConfig {
                    backend,
                    precision,
                    batch,
                    cc: CcMode::On,
                });
                println!(
                    "{:<10} {:<6} {:>6} {:>12.0} {:>12.0} {:>8.1}%",
                    backend.to_string(),
                    precision.to_string(),
                    batch,
                    off,
                    on,
                    (1.0 - on / off) * 100.0
                );
            }
        }
    }

    // The actionable summary.
    println!("\nrecommendations:");
    let hf_tax = {
        let off = est.throughput(LlmConfig {
            backend: Backend::HuggingFace,
            precision: LlmPrecision::Bf16,
            batch: 8,
            cc: CcMode::Off,
        });
        let on = est.throughput(LlmConfig {
            backend: Backend::HuggingFace,
            precision: LlmPrecision::Bf16,
            batch: 8,
            cc: CcMode::On,
        });
        (1.0 - on / off) * 100.0
    };
    let vllm_tax = {
        let off = est.throughput(LlmConfig {
            backend: Backend::Vllm,
            precision: LlmPrecision::Bf16,
            batch: 8,
            cc: CcMode::Off,
        });
        let on = est.throughput(LlmConfig {
            backend: Backend::Vllm,
            precision: LlmPrecision::Bf16,
            batch: 8,
            cc: CcMode::On,
        });
        (1.0 - on / off) * 100.0
    };
    println!(
        "  * serve with vLLM: its CC tax at batch 8 is {vllm_tax:.1}% vs {hf_tax:.1}% for HF \
         (CUDA graphs dodge the hypercall-laden launch path)"
    );
    println!("  * below ~batch 16, AWQ int4 wins (memory-bound decode);");
    println!("    at batch 64+, BF16 wins (dequant overhead when compute-bound)");
    println!("  * batch as much as latency allows: fixed CC costs amortize");
}
