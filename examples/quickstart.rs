//! Quickstart: run the same small GPU program with confidential computing
//! off and on, and see where the overhead comes from.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hcc::core::{PerfModel, PhaseBreakdown};
use hcc::prelude::*;
use hcc::runtime::KernelDesc;
use hcc::trace::KernelId;

fn run_app(cc: CcMode) -> hcc::trace::Timeline {
    let mut ctx = CudaContext::new(SimConfig::new(cc));
    let stream = ctx.default_stream();

    // Classic copy-then-execute: upload, 20 kernels, download.
    let size = ByteSize::mib(64);
    let host = ctx
        .malloc_host(size, HostMemKind::Pinned)
        .expect("host allocation");
    let dev = ctx.malloc_device(size).expect("device allocation");
    ctx.memcpy_h2d(dev, host, size).expect("upload");
    let kernel = KernelDesc::new(KernelId(0), SimDuration::millis(2));
    for _ in 0..20 {
        ctx.launch_kernel(&kernel, stream).expect("launch");
    }
    ctx.synchronize();
    ctx.memcpy_d2h(host, dev, size).expect("download");
    ctx.free_device(dev).expect("free device");
    ctx.free_host(host).expect("free host");
    ctx.into_timeline()
}

fn main() {
    println!("hcc quickstart — the CC tax on one small app\n");
    let mut spans = Vec::new();
    for cc in CcMode::ALL {
        let timeline = run_app(cc);
        let breakdown = PhaseBreakdown::from_timeline(&timeline);
        let fitted = PerfModel::fit(&timeline);
        println!("[{cc}]");
        println!("  {breakdown}");
        println!("  bar: [{}]", breakdown.render_bar(56));
        println!(
            "  model fit: alpha={:.2} beta={:.2} err={:.1}%",
            fitted.model.alpha,
            fitted.model.beta,
            fitted.error() * 100.0
        );
        let lm = timeline.launch_metrics();
        println!(
            "  launches: {} | mean KLO {} | total LQT {} | total KQT {}\n",
            lm.launch_count(),
            (lm.total_klo() / lm.launch_count() as u64),
            lm.total_lqt(),
            lm.total_kqt(),
        );
        spans.push(breakdown.span);
    }
    println!("end-to-end CC slowdown: x{:.2}", spans[1] / spans[0]);
}
