//! Property-based contracts over the multi-tenant serving simulator:
//! the determinism and conservation invariants the serving tentpole
//! (DESIGN.md §4) promises, checked with the in-repo `hcc-check`
//! harness. Every property pins its seed so CI failures replay
//! bit-for-bit (`HCC_CHECK_SEED=<seed>` overrides).

use hcc_bench::engine::ExperimentEngine;
use hcc_bench::serving::{self, arrival, ArrivalKind, SchedulerKind, ServingConfig};
use hcc_check::strategy::{f64s, u64s};
use hcc_check::{ensure, ensure_eq, forall, Config};
use hcc_types::json::ToJson;
use hcc_types::rng::Xoshiro256;
use hcc_types::{FaultPlan, RecoveryPolicy, SimTime};
use hcc_workloads::default_tenants;

/// Replaying a seed reproduces the arrival trace bit for bit — every
/// seq rank, tenant, class pick, and nanosecond — for every process
/// kind, while a perturbed seed yields a different trace.
#[test]
fn arrival_traces_replay_bit_for_bit_per_seed() {
    forall!(
        Config::new(0x5E21_0001).with_cases(16),
        (seed, kind_pick, r0, r1) in (
            u64s(0..u64::MAX),
            u64s(0..3),
            f64s(5.0..80.0),
            f64s(5.0..80.0)
        ) => {
            let kind = ArrivalKind::ALL[kind_pick as usize];
            let tenants = default_tenants(2);
            let a = arrival::generate(&tenants, &[r0, r1], kind, 400, seed);
            let b = arrival::generate(&tenants, &[r0, r1], kind, 400, seed);
            ensure_eq!(a.len(), 400);
            ensure!(a == b, "{kind}: replay diverged under seed {seed:#x}");
            let c = arrival::generate(
                &tenants,
                &[r0, r1],
                kind,
                400,
                seed ^ 0x9E37_79B9_7F4A_7C15,
            );
            ensure!(a != c, "{kind}: trace ignored the seed");
        }
    );
}

/// The Poisson process hits its configured rate: over 5000 draws the
/// mean inter-arrival gap lands within 8% of `1/rate` (the sample mean
/// of n exponentials has relative sd `1/sqrt(n)` ≈ 1.4%, so this bound
/// is ~5σ — and the pinned seed makes the test deterministic anyway).
#[test]
fn poisson_inter_arrival_mean_tracks_the_rate() {
    forall!(
        Config::new(0x5E21_0002).with_cases(12),
        (seed, rate) in (u64s(0..u64::MAX), f64s(2.0..200.0)) => {
            let mut proc = arrival::ArrivalProcess::new(
                ArrivalKind::Poisson,
                rate,
                Xoshiro256::seed_from_u64(seed),
            );
            let n = 5000u64;
            let mut last = SimTime::ZERO;
            for _ in 0..n {
                last = proc.next_arrival();
            }
            let mean_gap = last.as_secs_f64() / n as f64;
            let expected = 1.0 / rate;
            ensure!(
                (mean_gap - expected).abs() / expected < 0.08,
                "rate {rate:.2}: mean inter-arrival {mean_gap:.6} vs expected {expected:.6}"
            );
        }
    );
}

/// Conservation under fault injection: whatever the fault plan does to
/// the request shapes (deterministic failures become rejections), every
/// admitted request settles exactly once — completed or rejected, none
/// lost, under every scheduler in both modes.
#[test]
fn conservation_survives_fault_driven_rejections() {
    let engine = ExperimentEngine::new(2);
    forall!(
        Config::new(0x5E21_0003).with_cases(6),
        (plan_seed, rate, kind_pick, gpus) in (
            u64s(0..u64::MAX),
            f64s(0.1..0.9),
            u64s(0..3),
            u64s(1..4)
        ) => {
            let cfg = ServingConfig {
                requests: 160,
                gpus: gpus as usize,
                arrival: ArrivalKind::ALL[kind_pick as usize],
                fault: Some(FaultPlan::uniform(plan_seed, rate)),
                recovery: Some(RecoveryPolicy::Abort),
                ..ServingConfig::default()
            };
            let rep = serving::run(&cfg, &engine);
            ensure!(rep.conserved(), "conservation broke under plan {plan_seed:#x}");
            for run in &rep.runs {
                for mode in &run.modes {
                    ensure_eq!(mode.completed() + mode.rejected(), 160);
                }
            }
        }
    );
}

/// With an aggressive abort-on-fault plan the CC path actually sheds
/// load — rejections are exercised, not just vacuously conserved — and
/// the report still renders with both trailer invariants intact.
#[test]
fn aggressive_fault_plans_reject_without_losing_requests() {
    let engine = ExperimentEngine::new(2);
    let cfg = ServingConfig {
        requests: 300,
        gpus: 2,
        fault: Some(FaultPlan::uniform(0xFA_17, 0.95)),
        recovery: Some(RecoveryPolicy::Abort),
        ..ServingConfig::default()
    };
    let rep = serving::run(&cfg, &engine);
    assert!(rep.conserved());
    let rejected: u64 = rep
        .runs
        .iter()
        .flat_map(|r| r.modes.iter())
        .map(|m| m.rejected())
        .sum();
    assert!(rejected > 0, "a 95% fault rate must reject something");
    let text = rep.render();
    assert!(text.contains("conservation: admitted == completed + rejected (all runs): true"));
}

/// Engine worker-pool width is invisible in the serving report: a
/// 1-thread and a 4-thread engine produce byte-identical text and JSON
/// for the full multi-scheduler run.
#[test]
fn serving_report_is_invariant_to_engine_thread_count() {
    let cfg = ServingConfig {
        requests: 1_500,
        gpus: 3,
        schedulers: SchedulerKind::ALL.to_vec(),
        ..ServingConfig::default()
    };
    let narrow = serving::run(&cfg, &ExperimentEngine::new(1));
    let wide = serving::run(&cfg, &ExperimentEngine::new(4));
    assert_eq!(
        narrow.render(),
        wide.render(),
        "report text must not depend on HCC_ENGINE_THREADS"
    );
    assert_eq!(narrow.to_json_string(), wide.to_json_string());
}
