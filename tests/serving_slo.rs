//! Golden snapshot + SLO contracts for the serving simulator.
//!
//! One fixed configuration (seed `0xCC_5E21`, 2 tenants, 2 GPUs, 500
//! requests) is frozen byte-for-byte in `tests/golden/serving_report.txt`
//! so any drift in the arrival process, scheduler decisions, latency
//! aggregation, or text rendering is caught immediately. On top of the
//! snapshot, the SLO ordering (CC-on p99 strictly above CC-off p99 for
//! every tenant under every scheduler) and the latency-accounting
//! identities are asserted directly.
//!
//! To bless a deliberate change:
//! `HCC_BLESS=1 cargo test --test serving_slo`.

use std::path::PathBuf;

use hcc_bench::engine::ExperimentEngine;
use hcc_bench::serving::{self, SchedulerKind, ServingConfig, ServingReport};

/// The frozen fixture: defaults (2 tenants, Poisson, all schedulers,
/// seed `0xCC_5E21`) narrowed to 500 requests on a 2-GPU cluster.
fn fixture() -> ServingConfig {
    ServingConfig {
        requests: 500,
        gpus: 2,
        ..ServingConfig::default()
    }
}

fn report() -> ServingReport {
    serving::run(&fixture(), &ExperimentEngine::new(2))
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/serving_report.txt")
}

#[test]
fn serving_report_matches_golden_snapshot() {
    let text = report().render();
    let path = golden_path();
    if std::env::var_os("HCC_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless with HCC_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        text, golden,
        "serving report drifted from the golden snapshot; \
         if intentional, re-bless with HCC_BLESS=1"
    );
}

/// The headline result: at identical offered load, turning CC on pushes
/// every tenant's p99 strictly up, under every scheduler — no tenant is
/// accidentally sheltered by the fixture being too idle.
#[test]
fn cc_on_p99_strictly_dominates_cc_off_per_tenant() {
    let rep = report();
    assert!(rep.slo_holds());
    for run in &rep.runs {
        for (off, on) in run.off().tenants.iter().zip(&run.on().tenants) {
            assert!(
                off.completed > 0 && on.completed > 0,
                "{} under {}: fixture must exercise every tenant",
                off.name,
                run.scheduler
            );
            assert!(
                on.latency.quantile(0.99) > off.latency.quantile(0.99),
                "{} under {}: CC-on p99 {} must strictly exceed CC-off p99 {}",
                on.name,
                run.scheduler,
                on.latency.quantile(0.99),
                off.latency.quantile(0.99),
            );
        }
    }
}

/// Latency accounting is exact per tenant in every run: end-to-end
/// latency decomposes into queueing wait plus device service, and for
/// singleton-batch schedulers (FIFO, priority) device service is exactly
/// the solo shape time plus the admission charges of the phase model.
/// Continuous batching adds a nonnegative co-batching margin on top.
#[test]
fn per_tenant_latency_sums_are_consistent_with_the_phase_model() {
    let rep = report();
    for run in &rep.runs {
        for mode in &run.modes {
            for t in &mode.tenants {
                assert_eq!(
                    t.latency_total,
                    t.wait_total + t.service_total,
                    "{} {} under {}: latency != wait + service",
                    t.name,
                    mode.cc,
                    run.scheduler
                );
                let solo = t.shape_total + t.admission_total;
                if run.scheduler == SchedulerKind::Batching {
                    assert!(
                        t.service_total >= solo,
                        "{} {} under batching: batched service below solo floor",
                        t.name,
                        mode.cc
                    );
                } else {
                    assert_eq!(
                        t.service_total, solo,
                        "{} {} under {}: singleton batches must cost shape + admission",
                        t.name, mode.cc, run.scheduler
                    );
                }
            }
        }
    }
}
