//! End-to-end reproduction checks: every published observation (1–9) is
//! regenerated from the full stack and scored with the predicates in
//! `hcc_core::observations`.

use hcc::core::observations as obs;
use hcc::ml::cnn::CnnEstimator;
use hcc::ml::llm::{Backend, LlmConfig, LlmEstimator, LlmPrecision};
use hcc::trace::geomean;
use hcc::types::calib::paper;
use hcc::types::{ByteSize, CcMode, CpuModel, HostMemKind, SimDuration};
use hcc_bench::figures::{fig04a, fig05, fig07, fig09, fig12};

#[test]
fn observation_1_bandwidth_collapse_and_pinned_demotion() {
    let pts = fig04a::series();
    let check = obs::obs1_bandwidth(
        fig04a::peak(&pts, CcMode::Off, HostMemKind::Pinned),
        fig04a::peak(&pts, CcMode::Off, HostMemKind::Pageable),
        fig04a::peak(&pts, CcMode::On, HostMemKind::Pinned),
        fig04a::peak(&pts, CcMode::On, HostMemKind::Pageable),
    );
    assert!(check.holds, "{check}");
    // CC peak must land near the published 3.03 GB/s.
    let cc_peak = fig04a::peak(&pts, CcMode::On, HostMemKind::Pinned);
    assert!(
        (cc_peak - paper::CC_PEAK_H2D_GBS).abs() < 0.4,
        "cc peak {cc_peak} GB/s"
    );
}

#[test]
fn observation_2_crypto_cannot_feed_the_link() {
    let emr = hcc::crypto::SoftCryptoModel::new(CpuModel::EmeraldRapids);
    let gcm = emr
        .throughput(hcc::crypto::CryptoAlgorithm::AesGcm128)
        .as_gb_per_s();
    let ghash = emr
        .throughput(hcc::crypto::CryptoAlgorithm::Ghash)
        .as_gb_per_s();
    let pts = fig04a::series();
    let base_pcie = fig04a::peak(&pts, CcMode::Off, HostMemKind::Pinned);
    let check = obs::obs2_crypto(gcm, ghash, base_pcie);
    assert!(check.holds, "{check}");
}

#[test]
fn observation_3_copy_slowdowns() {
    let rows = fig05::rows();
    let ratios: Vec<f64> = rows.iter().map(fig05::Row::slowdown).collect();
    let check = obs::obs3_copy(&ratios);
    assert!(check.holds, "{check}");
}

#[test]
fn observation_4_launch_path_slowdowns() {
    let rows = fig07::rows();
    let (klo, lqt, kqt) = fig07::means(&rows);
    let check = obs::obs4_launch(klo, lqt, kqt);
    assert!(check.holds, "{check}");
}

#[test]
fn observation_5_ket_split() {
    let rows = fig09::rows();
    let nonuvm: Vec<f64> = rows.iter().map(fig09::Row::nonuvm_ratio).collect();
    let uvm_cc: Vec<f64> = rows.iter().map(fig09::Row::uvm_cc_slowdown).collect();
    let check = obs::obs5_ket(hcc::trace::mean_ratio(&nonuvm), geomean(&uvm_cc));
    assert!(check.holds, "{check}");
    // The base-UVM slowdown should sit near the paper's 5.29x.
    let uvm_base: Vec<f64> = rows.iter().map(fig09::Row::uvm_base_slowdown).collect();
    let mean = hcc::trace::mean_ratio(&uvm_base);
    assert!(
        (paper::UVM_BASE_SLOWDOWN * 0.5..=paper::UVM_BASE_SLOWDOWN * 1.6).contains(&mean),
        "base UVM mean {mean}"
    );
}

#[test]
fn observation_6_klr_determines_sensitivity() {
    use hcc::prelude::*;
    use hcc::workloads::{runner, suites};
    let mut points = Vec::new();
    for spec in suites::all() {
        if spec.uvm || spec.launch_count() < 2 {
            continue;
        }
        let base = runner::run(&spec, SimConfig::new(CcMode::Off)).expect("run");
        let cc = runner::run(&spec, SimConfig::new(CcMode::On)).expect("run");
        let klr = hcc::core::KlrAnalysis::of(&base.timeline.launch_metrics()).klr;
        // Compare only the kernel-phase span to isolate the launch effect
        // from copy slowdowns: the launch..end window.
        let speed = |r: &hcc::workloads::RunResult| {
            let lm = r.timeline.launch_metrics();
            let start = lm.launches.first().expect("has launches").start;
            let end = lm
                .kernels
                .last()
                .map(|k| k.start + k.ket)
                .expect("has kernels");
            end.saturating_since(start)
        };
        let slowdown = speed(&cc) / speed(&base);
        points.push((klr, slowdown));
    }
    let check = obs::obs6_klr(&points);
    assert!(check.holds, "{check} — points {points:?}");
}

#[test]
fn observation_7_fusion_tradeoff() {
    let recs = fig12::launch_train(CcMode::On, 100, 100);
    let steady: SimDuration = recs[10..90].iter().map(|r| r.klo).sum::<SimDuration>() / 80;
    let first_ratio = recs[0].klo / steady;

    // Short kernels: splitting far past the optimum makes the run
    // launch-bound, so the maximal split must lose to the best point by
    // a clear margin while KLO and LQT totals move in opposite ways.
    let sweep = fig12::fusion_sweep(CcMode::On, SimDuration::millis(5), 1024);
    let spans: Vec<_> = sweep.iter().map(|p| p.span).collect();
    let min_span = *spans.iter().min().expect("non-empty");
    let last = *spans.last().expect("non-empty");
    let over_splitting_hurts = last.as_secs_f64() > min_span.as_secs_f64() * 1.2;
    let klo_rises = sweep.last().expect("non-empty").total_klo > sweep[0].total_klo;
    let tradeoff = over_splitting_hurts && klo_rises;

    let check = obs::obs7_fusion(first_ratio, tradeoff);
    assert!(check.holds, "{check} — spans {spans:?}");
}

#[test]
fn observation_8_overlap() {
    let total = ByteSize::mib(512);
    let short = SimDuration::millis(1);
    let long = SimDuration::millis(100);
    let base = fig12::overlap_series(CcMode::Off, total, short, &[64])[0]
        .1
        .speedup();
    let cc_short = fig12::overlap_series(CcMode::On, total, short, &[64])[0]
        .1
        .speedup();
    let cc_long = fig12::overlap_series(CcMode::On, total, long, &[64])[0]
        .1
        .speedup();
    let check = obs::obs8_overlap(base, cc_short, cc_long);
    assert!(check.holds, "{check}");
}

#[test]
fn observation_9_quantization() {
    // FP16 training-time cut at batch 1024 under CC.
    let est = CnnEstimator::default();
    let cuts: Vec<f64> = hcc::ml::MODELS
        .iter()
        .map(|m| {
            let fp32 = est.estimate(
                m,
                hcc::ml::TrainConfig {
                    batch: 1024,
                    precision: hcc::core::Precision::Fp32,
                    cc: CcMode::On,
                },
            );
            let fp16 = est.estimate(
                m,
                hcc::ml::TrainConfig {
                    batch: 1024,
                    precision: hcc::core::Precision::Fp16,
                    cc: CcMode::On,
                },
            );
            (1.0 - fp16.total_time.as_secs_f64() / fp32.total_time.as_secs_f64()) * 100.0
        })
        .collect();
    let fp16_cut = cuts.iter().sum::<f64>() / cuts.len() as f64;

    // vLLM vs HF and the AWQ/BF16 crossover.
    let llm = LlmEstimator::default();
    let mut vllm_beats_hf = true;
    for batch in hcc::ml::FIG14_BATCHES {
        for cc in CcMode::ALL {
            for precision in [LlmPrecision::Bf16, LlmPrecision::Awq] {
                if llm.vllm_speedup(precision, batch, cc) <= 1.0 {
                    vllm_beats_hf = false;
                }
            }
        }
    }
    let t = |precision, batch, cc| {
        llm.throughput(LlmConfig {
            backend: Backend::Vllm,
            precision,
            batch,
            cc,
        })
    };
    let awq_small = t(LlmPrecision::Awq, 4, CcMode::On) > t(LlmPrecision::Bf16, 4, CcMode::On);
    let bf16_large = t(LlmPrecision::Bf16, 128, CcMode::On) > t(LlmPrecision::Awq, 128, CcMode::On);

    let check = obs::obs9_quant(fp16_cut, vllm_beats_hf, awq_small, bf16_large);
    assert!(check.holds, "{check}");
}
