//! Property-based tests over the full runtime: invariants that must hold
//! for *any* operation mix, size, or seed.
//!
//! Ported to the in-repo `hcc-check` harness: every property pins its seed
//! so CI failures replay bit-for-bit (`HCC_CHECK_SEED=<seed>` overrides).

use hcc::prelude::*;
use hcc::runtime::KernelDesc;
use hcc::trace::KernelId;
use hcc_check::strategy::{bytes, u64s, u8s, vecs};
use hcc_check::{ensure, ensure_eq, forall, Config};

const CASES: u32 = 24;

/// CC never makes any blocking operation faster: for every op kind
/// and size, the CC-mode duration is >= the base-mode duration (same
/// seed, so jitter streams differ only by the mode decorrelation —
/// tolerate a small jitter allowance on kernel-free ops).
#[test]
fn cc_is_never_faster_for_copies_and_management() {
    forall!(Config::new(0x24_0001).with_cases(CASES), mib in u64s(1..128) => {
        let size = ByteSize::mib(mib);
        let run = |cc: CcMode| {
            let mut ctx = CudaContext::new(SimConfig::new(cc).with_seed(7));
            let h = ctx.malloc_host(size, HostMemKind::Pageable).unwrap();
            let d = ctx.malloc_device(size).unwrap();
            let copy = ctx.memcpy_h2d(d, h, size).unwrap();
            let t0 = ctx.now();
            ctx.free_device(d).unwrap();
            ctx.free_host(h).unwrap();
            let mgmt = ctx.now() - t0;
            (copy, mgmt)
        };
        let (copy_b, mgmt_b) = run(CcMode::Off);
        let (copy_c, mgmt_c) = run(CcMode::On);
        ensure!(copy_c > copy_b, "copy {copy_c} vs {copy_b}");
        ensure!(mgmt_c > mgmt_b, "mgmt {mgmt_c} vs {mgmt_b}");
    });
}

/// Copy time is monotone in size within one mode (bigger copies never
/// finish faster). Generated as (small, delta>0) so every case is a
/// strict size increase — no case filtering needed.
#[test]
fn copy_time_monotone_in_size() {
    forall!(
        Config::new(0x24_0002).with_cases(CASES),
        (small, delta) in (u64s(1..255), u64s(1..255)) => {
            let large = small + delta;
            let time = |mib: u64| {
                let size = ByteSize::mib(mib);
                let mut ctx = CudaContext::new(SimConfig::new(CcMode::On).with_seed(9));
                let h = ctx.malloc_host(size, HostMemKind::Pageable).unwrap();
                let d = ctx.malloc_device(size).unwrap();
                ctx.memcpy_h2d(d, h, size).unwrap()
            };
            ensure!(time(large) > time(small));
        }
    );
}

/// The host clock is monotone across arbitrary op sequences, every
/// event lies within the final span, and launches equal kernels.
#[test]
fn clock_monotone_and_events_bounded() {
    forall!(
        Config::new(0x24_0003).with_cases(CASES),
        (ops, seed) in (vecs(u8s(0..4), 1..30), u64s(0..u64::MAX)) => {
            let mut ctx = CudaContext::new(SimConfig::new(CcMode::On).with_seed(seed));
            let size = ByteSize::mib(2);
            let h = ctx.malloc_host(size, HostMemKind::Pageable).unwrap();
            let d = ctx.malloc_device(size).unwrap();
            let mut last = ctx.now();
            let mut launches = 0u64;
            for op in ops {
                match op {
                    0 => { ctx.memcpy_h2d(d, h, size).unwrap(); }
                    1 => { ctx.memcpy_d2h(h, d, size).unwrap(); }
                    2 => {
                        ctx.launch_kernel(
                            &KernelDesc::new(KernelId(0), SimDuration::micros(50)),
                            ctx.default_stream(),
                        )
                        .unwrap();
                        launches += 1;
                    }
                    _ => { ctx.synchronize(); }
                }
                ensure!(ctx.now() >= last, "clock went backwards");
                last = ctx.now();
            }
            ctx.synchronize();
            let end = ctx.timeline().end();
            for e in ctx.timeline().events() {
                ensure!(e.end <= end);
            }
            let lm = ctx.timeline().launch_metrics();
            ensure_eq!(lm.launch_count() as u64, launches);
            ensure_eq!(lm.kernels.len() as u64, launches);
        }
    );
}

/// Stream-ordered kernels never overlap: each kernel on one stream
/// starts at or after the previous one ends.
#[test]
fn stream_order_is_preserved() {
    forall!(
        Config::new(0x24_0004).with_cases(CASES),
        kets in vecs(u64s(1..500), 2..20) => {
            let mut ctx = CudaContext::new(SimConfig::new(CcMode::On));
            for (i, ket) in kets.iter().enumerate() {
                ctx.launch_kernel(
                    &KernelDesc::new(KernelId(i as u32), SimDuration::micros(*ket)),
                    ctx.default_stream(),
                )
                .unwrap();
            }
            ctx.synchronize();
            let lm = ctx.timeline().launch_metrics();
            for pair in lm.kernels.windows(2) {
                ensure!(pair[1].start >= pair[0].start + pair[0].ket);
            }
        }
    );
}

/// Functional uploads round-trip arbitrary payloads under CC.
#[test]
fn functional_upload_roundtrip() {
    forall!(
        Config::new(0x24_0005).with_cases(CASES),
        payload in vecs(bytes(), 1..4096) => {
            let mut ctx = CudaContext::new(SimConfig::new(CcMode::On));
            let d = ctx.malloc_device(ByteSize::kib(4)).unwrap();
            ctx.upload_bytes(d, &payload).unwrap();
            let back = ctx.download_bytes(d, payload.len() as u64).unwrap();
            ensure_eq!(back, payload);
        }
    );
}
