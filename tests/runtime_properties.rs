//! Property-based tests over the full runtime: invariants that must hold
//! for *any* operation mix, size, or seed.

use hcc::prelude::*;
use hcc::runtime::KernelDesc;
use hcc::trace::KernelId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CC never makes any blocking operation faster: for every op kind
    /// and size, the CC-mode duration is >= the base-mode duration (same
    /// seed, so jitter streams differ only by the mode decorrelation —
    /// tolerate a small jitter allowance on kernel-free ops).
    #[test]
    fn cc_is_never_faster_for_copies_and_management(mib in 1u64..128) {
        let size = ByteSize::mib(mib);
        let run = |cc: CcMode| {
            let mut ctx = CudaContext::new(SimConfig::new(cc).with_seed(7));
            let h = ctx.malloc_host(size, HostMemKind::Pageable).unwrap();
            let d = ctx.malloc_device(size).unwrap();
            let copy = ctx.memcpy_h2d(d, h, size).unwrap();
            let t0 = ctx.now();
            ctx.free_device(d).unwrap();
            ctx.free_host(h).unwrap();
            let mgmt = ctx.now() - t0;
            (copy, mgmt)
        };
        let (copy_b, mgmt_b) = run(CcMode::Off);
        let (copy_c, mgmt_c) = run(CcMode::On);
        prop_assert!(copy_c > copy_b, "copy {copy_c} vs {copy_b}");
        prop_assert!(mgmt_c > mgmt_b, "mgmt {mgmt_c} vs {mgmt_b}");
    }

    /// Copy time is monotone in size within one mode (bigger copies never
    /// finish faster).
    #[test]
    fn copy_time_monotone_in_size(a in 1u64..256, b in 1u64..256) {
        let (small, large) = (a.min(b), a.max(b));
        prop_assume!(small < large);
        let time = |mib: u64| {
            let size = ByteSize::mib(mib);
            let mut ctx = CudaContext::new(SimConfig::new(CcMode::On).with_seed(9));
            let h = ctx.malloc_host(size, HostMemKind::Pageable).unwrap();
            let d = ctx.malloc_device(size).unwrap();
            ctx.memcpy_h2d(d, h, size).unwrap()
        };
        prop_assert!(time(large) > time(small));
    }

    /// The host clock is monotone across arbitrary op sequences, every
    /// event lies within the final span, and launches equal kernels.
    #[test]
    fn clock_monotone_and_events_bounded(
        ops in prop::collection::vec(0u8..4, 1..30),
        seed in any::<u64>(),
    ) {
        let mut ctx = CudaContext::new(SimConfig::new(CcMode::On).with_seed(seed));
        let size = ByteSize::mib(2);
        let h = ctx.malloc_host(size, HostMemKind::Pageable).unwrap();
        let d = ctx.malloc_device(size).unwrap();
        let mut last = ctx.now();
        let mut launches = 0u64;
        for op in ops {
            match op {
                0 => { ctx.memcpy_h2d(d, h, size).unwrap(); }
                1 => { ctx.memcpy_d2h(h, d, size).unwrap(); }
                2 => {
                    ctx.launch_kernel(
                        &KernelDesc::new(KernelId(0), SimDuration::micros(50)),
                        ctx.default_stream(),
                    )
                    .unwrap();
                    launches += 1;
                }
                _ => { ctx.synchronize(); }
            }
            prop_assert!(ctx.now() >= last, "clock went backwards");
            last = ctx.now();
        }
        ctx.synchronize();
        let end = ctx.timeline().end();
        for e in ctx.timeline().events() {
            prop_assert!(e.end <= end);
        }
        let lm = ctx.timeline().launch_metrics();
        prop_assert_eq!(lm.launch_count() as u64, launches);
        prop_assert_eq!(lm.kernels.len() as u64, launches);
    }

    /// Stream-ordered kernels never overlap: each kernel on one stream
    /// starts at or after the previous one ends.
    #[test]
    fn stream_order_is_preserved(kets in prop::collection::vec(1u64..500, 2..20)) {
        let mut ctx = CudaContext::new(SimConfig::new(CcMode::On));
        for (i, ket) in kets.iter().enumerate() {
            ctx.launch_kernel(
                &KernelDesc::new(KernelId(i as u32), SimDuration::micros(*ket)),
                ctx.default_stream(),
            )
            .unwrap();
        }
        ctx.synchronize();
        let lm = ctx.timeline().launch_metrics();
        for pair in lm.kernels.windows(2) {
            prop_assert!(pair[1].start >= pair[0].start + pair[0].ket);
        }
    }

    /// Functional uploads round-trip arbitrary payloads under CC.
    #[test]
    fn functional_upload_roundtrip(payload in prop::collection::vec(any::<u8>(), 1..4096)) {
        let mut ctx = CudaContext::new(SimConfig::new(CcMode::On));
        let d = ctx.malloc_device(ByteSize::kib(4)).unwrap();
        ctx.upload_bytes(d, &payload).unwrap();
        let back = ctx.download_bytes(d, payload.len() as u64).unwrap();
        prop_assert_eq!(back, payload);
    }
}
