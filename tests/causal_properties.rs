//! Property tests for the causal plane over *random* programs: causal
//! edge collection must observe without perturbing (like the metrics
//! plane, `tests/metrics_properties.rs`), the collected DAG must be
//! well-formed, and the critical path extracted from any trace must
//! satisfy the attribution identity Σ segments == P.

use hcc::prelude::*;
use hcc::runtime::{KernelDesc, ManagedAccess};
use hcc::trace::{critpath, KernelId};
use hcc_check::strategy::{u64s, u8s, vecs};
use hcc_check::{ensure, ensure_eq, forall, Config};

const CASES: u32 = 16;

/// Drives one random op program through a context; returns it synced.
fn drive(ops: &[u8], cc: CcMode, seed: u64, causal: bool) -> CudaContext {
    let mut ctx = CudaContext::new(SimConfig::new(cc).with_seed(seed).with_causal(causal));
    let size = ByteSize::mib(2);
    let h = ctx.malloc_host(size, HostMemKind::Pinned).unwrap();
    let d = ctx.malloc_device(size).unwrap();
    let m = ctx.malloc_managed(size).unwrap();
    for (i, op) in ops.iter().enumerate() {
        match op % 5 {
            0 => {
                ctx.memcpy_h2d(d, h, size).unwrap();
            }
            1 => {
                ctx.memcpy_d2h(h, d, size).unwrap();
            }
            2 => {
                ctx.launch_kernel(
                    &KernelDesc::new(KernelId(i as u32), SimDuration::micros(40)),
                    ctx.default_stream(),
                )
                .unwrap();
            }
            3 => {
                ctx.launch_kernel(
                    &KernelDesc::new(KernelId(i as u32), SimDuration::micros(80))
                        .with_managed(ManagedAccess::all(m)),
                    ctx.default_stream(),
                )
                .unwrap();
            }
            _ => {
                ctx.synchronize();
            }
        }
    }
    ctx.synchronize();
    ctx
}

/// Collection is free for arbitrary programs: same seed, same ops,
/// causal on vs off -> bit-identical trace and clock; only the DAG is
/// extra.
#[test]
fn causal_never_perturbs_any_program() {
    forall!(
        Config::new(0xCA5_0001).with_cases(CASES),
        (ops, seed, cc) in (vecs(u8s(0..5), 1..24), u64s(0..u64::MAX), u8s(0..2)) => {
            let cc = if cc == 0 { CcMode::Off } else { CcMode::On };
            let off = drive(&ops, cc, seed, false);
            let on = drive(&ops, cc, seed, true);
            ensure_eq!(off.timeline(), on.timeline());
            ensure_eq!(off.now(), on.now());
            ensure!(off.causal_graph().is_empty(), "disabled graph collected edges");
        }
    );
}

/// Every recorded edge is well-formed: endpoints resolve to recorded
/// events, sources precede targets in recording order (so the DAG is
/// acyclic by construction), and no edge points backwards in time.
#[test]
fn causal_edges_are_well_formed() {
    forall!(
        Config::new(0xCA5_0002).with_cases(CASES),
        (ops, seed, cc) in (vecs(u8s(0..5), 1..24), u64s(0..u64::MAX), u8s(0..2)) => {
            let cc = if cc == 0 { CcMode::Off } else { CcMode::On };
            let ctx = drive(&ops, cc, seed, true);
            let graph = ctx.causal_graph();
            ensure!(graph.is_acyclic());
            for e in graph.edges() {
                let from = ctx.timeline().get(e.from);
                let to = ctx.timeline().get(e.to);
                ensure!(from.is_some() && to.is_some(), "dangling edge endpoint");
                ensure!(e.from.0 < e.to.0, "edge against recording order");
                ensure!(
                    to.unwrap().end >= from.unwrap().end,
                    "edge points backwards in time ({:?})",
                    e.kind
                );
            }
        }
    );
}

/// The acceptance gate for the explainer: every standard-suite app, in
/// both modes, extracts a critical path whose identity holds (asserted
/// inside `explain_one` per app/mode) and whose per-resource deltas sum
/// to ΔP — across both the UVM and non-UVM populations.
#[test]
fn explainer_covers_the_full_suite_with_identity() {
    let (rows, failures) = hcc_bench::explain::explain_all();
    assert!(failures.is_empty(), "suite apps failed: {failures:?}");
    assert_eq!(rows.len(), hcc_workloads::suites::all().len());
    assert!(rows.iter().any(|e| e.uvm) && rows.iter().any(|e| !e.uvm));
    for e in &rows {
        assert!(e.deltas_sum_to_delta_p(), "{}: deltas != ΔP", e.app);
    }
}

/// The critical path of any program satisfies the enforced identity:
/// time-monotonic, gap-free segments partitioning exactly the observed
/// span, with the per-resource attribution summing to P.
#[test]
fn critical_path_identity_on_any_program() {
    forall!(
        Config::new(0xCA5_0003).with_cases(CASES),
        (ops, seed, cc) in (vecs(u8s(0..5), 1..24), u64s(0..u64::MAX), u8s(0..2)) => {
            let cc = if cc == 0 { CcMode::Off } else { CcMode::On };
            let ctx = drive(&ops, cc, seed, true);
            let path = critpath::extract(ctx.timeline(), ctx.causal_graph());
            ensure!(path.identity_holds());
            ensure_eq!(path.span(), ctx.timeline().span());
            ensure_eq!(path.attribution().total(), ctx.timeline().span());
            let mut cursor = path.first();
            for s in path.segments() {
                ensure_eq!(s.start, cursor);
                ensure!(s.end > s.start, "segments must have positive width");
                cursor = s.end;
            }
            ensure_eq!(cursor, path.last());
            for id in path.events_on_path() {
                ensure!(ctx.timeline().get(id).is_some(), "path cites unknown event");
            }
        }
    );
}
