//! Property-based tests over the fault-injection subsystem: the
//! determinism and no-data-loss invariants the tentpole leans on.
//!
//! Uses the in-repo `hcc-check` harness; every property pins its seed so
//! CI failures replay bit-for-bit (`HCC_CHECK_SEED=<seed>` overrides).

use hcc::prelude::*;
use hcc_check::strategy::{bytes, f64s, u64s, vecs};
use hcc_check::{ensure, ensure_eq, forall, Config};
use hcc_types::{FaultInjector, FaultPlan, FaultSite, RecoveryPolicy};

const CASES: u32 = 24;

/// Backoff schedules are a pure function of the seeds: two injectors
/// built from the same (plan, policy, config seed) produce identical
/// decision sequences — including identical jittered backoffs — at
/// every site.
#[test]
fn backoff_schedules_are_deterministic_per_seed() {
    forall!(
        Config::new(0x5F_0001).with_cases(CASES),
        (plan_seed, cfg_seed, rate) in (u64s(0..u64::MAX), u64s(0..u64::MAX), f64s(0.05..1.0)) => {
            let plan = FaultPlan::uniform(plan_seed, rate).with_max_per_site(8);
            let policy = RecoveryPolicy::default_retry();
            let mut a = FaultInjector::new(plan.clone(), policy.clone(), cfg_seed);
            let mut b = FaultInjector::new(plan, policy, cfg_seed);
            for round in 0..32 {
                for site in FaultSite::ALL {
                    let ra = a.recover(site);
                    let rb = b.recover(site);
                    ensure!(ra == rb, "round {round} at {site}: {ra:?} != {rb:?}");
                }
            }
            ensure_eq!(a.counts(), b.counts());
        }
    );
}

/// A different config seed decorrelates the injector stream: with a
/// moderate rate, at least one decision differs across many draws.
/// (Not a hard guarantee per draw — over 160 guarded ops at rate >= 0.2
/// the chance of identical streams is negligible, and the pinned seed
/// makes the test deterministic.)
#[test]
fn config_seed_decorrelates_decisions() {
    forall!(
        Config::new(0x5F_0002).with_cases(CASES),
        (plan_seed, rate) in (u64s(0..u64::MAX), f64s(0.2..0.8)) => {
            let plan = FaultPlan::uniform(plan_seed, rate);
            let policy = RecoveryPolicy::default_retry();
            let mut a = FaultInjector::new(plan.clone(), policy.clone(), 1);
            let mut b = FaultInjector::new(plan, policy, 2);
            let mut differed = false;
            for _ in 0..32 {
                for site in FaultSite::ALL {
                    if a.recover(site) != b.recover(site) {
                        differed = true;
                    }
                }
            }
            ensure!(differed, "decision streams identical across config seeds");
        }
    );
}

/// Recovery never loses bytes: with GCM tag faults injected on both
/// staging directions at full rate, an upload/download round trip still
/// returns the exact payload (the runtime re-derives a good tag after
/// charging the retry cost).
#[test]
fn recovery_never_loses_bytes() {
    forall!(
        Config::new(0x5F_0003).with_cases(CASES),
        (payload, seed) in (vecs(bytes(), 1..4096), u64s(0..u64::MAX)) => {
            let plan = FaultPlan::none()
                .with_rate(FaultSite::GcmTagH2D, 1.0)
                .with_rate(FaultSite::GcmTagD2H, 1.0)
                .with_max_per_site(4);
            let cfg = SimConfig::new(CcMode::On).with_seed(seed).with_fault_plan(plan);
            let mut ctx = CudaContext::new(cfg);
            let d = ctx.malloc_device(ByteSize::kib(4)).unwrap();
            ctx.upload_bytes(d, &payload).unwrap();
            let back = ctx.download_bytes(d, payload.len() as u64).unwrap();
            ensure_eq!(back, payload);

            // And the recovery time was actually attributed.
            let mm = ctx.timeline().mem_metrics();
            ensure!(mm.faults_injected > 0, "no fault was injected at rate 1.0");
            ensure!(mm.fault_time > SimDuration::ZERO, "T_fault not attributed");
        }
    );
}

/// The empty plan is bit-for-bit inert: `T_fault == 0`, every fault
/// counter is zero, and the timeline matches a run with no plan at all,
/// for arbitrary op mixes.
#[test]
fn empty_plan_is_inert_and_t_fault_zero() {
    forall!(
        Config::new(0x5F_0004).with_cases(CASES),
        (mib, seed) in (u64s(1..64), u64s(0..u64::MAX)) => {
            let size = ByteSize::mib(mib);
            let run = |cfg: SimConfig| {
                let mut ctx = CudaContext::new(cfg);
                let h = ctx.malloc_host(size, HostMemKind::Pageable).unwrap();
                let d = ctx.malloc_device(size).unwrap();
                ctx.memcpy_h2d(d, h, size).unwrap();
                ctx.memcpy_d2h(h, d, size).unwrap();
                ctx.synchronize();
                ctx.into_timeline()
            };
            let plain = run(SimConfig::new(CcMode::On).with_seed(seed));
            let planned = run(
                SimConfig::new(CcMode::On)
                    .with_seed(seed)
                    .with_fault_plan(FaultPlan::none()),
            );
            ensure_eq!(plain, planned);

            let p = planned.phase_totals();
            ensure_eq!(p.t_fault, SimDuration::ZERO);
            let mm = planned.mem_metrics();
            ensure_eq!(mm.faults_injected, 0);
            ensure_eq!(mm.fault_retries, 0);
            ensure_eq!(mm.fault_time, SimDuration::ZERO);
        }
    );
}

/// Seeded fault runs replay deterministically end to end: the same
/// (plan, seed) produces identical timelines and fault counters on a
/// fresh context.
#[test]
fn seeded_fault_runs_replay() {
    forall!(
        Config::new(0x5F_0005).with_cases(CASES),
        (plan_seed, seed, rate) in (u64s(0..u64::MAX), u64s(0..u64::MAX), f64s(0.1..0.9)) => {
            let run = || {
                let plan = FaultPlan::uniform(plan_seed, rate).with_max_per_site(4);
                let cfg = SimConfig::new(CcMode::On).with_seed(seed).with_fault_plan(plan);
                let mut ctx = CudaContext::new(cfg);
                let size = ByteSize::mib(8);
                let h = ctx.malloc_host(size, HostMemKind::Pinned).unwrap();
                let d = ctx.malloc_device(size).unwrap();
                ctx.memcpy_h2d(d, h, size).unwrap();
                ctx.memcpy_d2h(h, d, size).unwrap();
                ctx.synchronize();
                let counts = ctx.fault_counts();
                (ctx.into_timeline(), counts)
            };
            let (tl_a, counts_a) = run();
            let (tl_b, counts_b) = run();
            ensure_eq!(tl_a, tl_b);
            ensure_eq!(counts_a, counts_b);
        }
    );
}
