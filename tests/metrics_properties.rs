//! Property tests for the metrics plane over *random* programs: the
//! contracts in `tests/metrics_plane.rs` hold for the standard suite,
//! these check they hold for any op mix the runtime accepts.

use hcc::prelude::*;
use hcc::runtime::{KernelDesc, ManagedAccess};
use hcc::trace::KernelId;
use hcc_bench::engine::ExperimentEngine;
use hcc_check::strategy::{u64s, u8s, vecs};
use hcc_check::{ensure, ensure_eq, forall, Config};
use hcc_workloads::spec::{Op, Suite, WorkloadSpec};
use hcc_workloads::{runner, Scenario};

const CASES: u32 = 16;

/// Drives one random op program through a context; returns it synced.
fn drive(ops: &[u8], cc: CcMode, seed: u64, metrics: bool) -> CudaContext {
    let mut ctx = CudaContext::new(SimConfig::new(cc).with_seed(seed).with_metrics(metrics));
    let size = ByteSize::mib(2);
    let h = ctx.malloc_host(size, HostMemKind::Pinned).unwrap();
    let d = ctx.malloc_device(size).unwrap();
    let m = ctx.malloc_managed(size).unwrap();
    for (i, op) in ops.iter().enumerate() {
        match op % 5 {
            0 => {
                ctx.memcpy_h2d(d, h, size).unwrap();
            }
            1 => {
                ctx.memcpy_d2h(h, d, size).unwrap();
            }
            2 => {
                ctx.launch_kernel(
                    &KernelDesc::new(KernelId(i as u32), SimDuration::micros(40)),
                    ctx.default_stream(),
                )
                .unwrap();
            }
            3 => {
                ctx.launch_kernel(
                    &KernelDesc::new(KernelId(i as u32), SimDuration::micros(80))
                        .with_managed(ManagedAccess::all(m)),
                    ctx.default_stream(),
                )
                .unwrap();
            }
            _ => {
                ctx.synchronize();
            }
        }
    }
    ctx.synchronize();
    ctx
}

/// Observation is free for arbitrary programs: same seed, same ops,
/// metrics on vs off -> bit-identical trace and clock.
#[test]
fn metrics_never_perturb_any_program() {
    forall!(
        Config::new(0x0B5_0001).with_cases(CASES),
        (ops, seed, cc) in (vecs(u8s(0..5), 1..24), u64s(0..u64::MAX), u8s(0..2)) => {
            let cc = if cc == 0 { CcMode::Off } else { CcMode::On };
            let off = drive(&ops, cc, seed, false);
            let on = drive(&ops, cc, seed, true);
            ensure_eq!(off.timeline(), on.timeline());
            ensure_eq!(off.now(), on.now());
            ensure!(off.metrics_snapshot().is_none());
            ensure!(on.metrics_snapshot().is_some());
        }
    );
}

/// Conservation: after a fully-synchronized program, every gauge drains
/// back to zero (nothing stays queued, resident, or in flight), and the
/// runtime queue integrals reproduce the trace's phase totals exactly.
#[test]
fn gauges_conserve_and_integrals_attribute() {
    forall!(
        Config::new(0x0B5_0002).with_cases(CASES),
        (ops, seed) in (vecs(u8s(0..5), 1..24), u64s(0..u64::MAX)) => {
            let ctx = drive(&ops, CcMode::On, seed, true);
            let set = ctx.metrics_snapshot().unwrap();
            for series in &set.gauges {
                ensure!(
                    series.final_value() == 0,
                    "{} did not drain (final {})",
                    series.name,
                    series.final_value()
                );
            }
            let lm = ctx.timeline().launch_metrics();
            ensure_eq!(
                set.gauge_integral("runtime.launch_queue").unwrap(),
                lm.total_lqt()
            );
            ensure_eq!(
                set.gauge_integral("runtime.kernel_queue").unwrap(),
                lm.total_kqt()
            );
            ensure_eq!(
                set.gauge_integral("runtime.kernel_active").unwrap(),
                lm.total_ket()
            );
        }
    );
}

/// Seeded replay is deterministic at any worker count: random ad-hoc
/// scenarios produce identical snapshots from a serial engine and a
/// parallel one.
#[test]
fn obs_replay_is_worker_count_invariant() {
    forall!(
        Config::new(0x0B5_0003).with_cases(8),
        (kinds, seed) in (vecs(u8s(0..5), 2..12), u64s(0..u64::MAX)) => {
            let mut ops = vec![
                Op::MallocHost { slot: 0, size: ByteSize::mib(2), kind: HostMemKind::Pinned },
                Op::MallocDevice { slot: 1, size: ByteSize::mib(2) },
                Op::MallocManaged { slot: 2, size: ByteSize::mib(2) },
            ];
            for (i, k) in kinds.iter().enumerate() {
                ops.push(match k % 5 {
                    0 => Op::H2D { dst: 1, src: 0, bytes: ByteSize::mib(2) },
                    1 => Op::D2H { dst: 0, src: 1, bytes: ByteSize::mib(2) },
                    2 => Op::Launch {
                        kernel: i as u32,
                        ket: SimDuration::micros(40),
                        managed: vec![],
                        repeat: 1,
                    },
                    3 => Op::Launch {
                        kernel: i as u32,
                        ket: SimDuration::micros(80),
                        managed: vec![2],
                        repeat: 2,
                    },
                    _ => Op::Sync,
                });
            }
            let spec = WorkloadSpec { name: "obs-prop", suite: Suite::Micro, uvm: false, ops };
            let cfg = SimConfig::new(CcMode::On).with_seed(seed).with_metrics(true);
            let batch = vec![Scenario::adhoc(spec.clone(), cfg.clone())];
            let serial = ExperimentEngine::new(1).run_all(&batch);
            let parallel = ExperimentEngine::new(3).run_all(&batch);
            let direct = runner::run(&spec, cfg).unwrap();
            let s = serial[0].expect_run();
            let p = parallel[0].expect_run();
            ensure_eq!(s.timeline, p.timeline);
            ensure_eq!(s.metrics, p.metrics);
            ensure_eq!(s.metrics, direct.metrics);
        }
    );
}
