//! Property-based tests over the chaos-lab building blocks: recovery
//! policies driven to their edges and storm-calendar determinism.
//!
//! Uses the in-repo `hcc-check` harness; every property pins its seed so
//! CI failures replay bit-for-bit (`HCC_CHECK_SEED=<seed>` overrides).

use hcc::prelude::*;
use hcc_check::strategy::{bytes, u64s, vecs};
use hcc_check::{ensure, ensure_eq, forall, Config};
use hcc_runtime::{KernelDesc, RuntimeError};
use hcc_trace::KernelId;
use hcc_types::{FaultPlan, FaultSite, RecoveryPolicy, StormIntensity, StormSchedule};

const CASES: u32 = 24;

/// Exhausting the retry budget surfaces [`RuntimeError::Unrecoverable`]
/// at the ring-doorbell site: with a 100% fault rate and no per-site
/// injection cap, every retry fails again, so a `Retry { max_attempts }`
/// policy must abort after exactly `max_attempts + 1` attempts (the
/// initial one plus every retry).
#[test]
fn retry_exhaustion_surfaces_unrecoverable() {
    forall!(
        Config::new(0xC4A0_0001).with_cases(CASES),
        (seed, max_retries) in (u64s(0..u64::MAX), u64s(1..6)) => {
            let max_attempts = max_retries as u32;
            let plan = FaultPlan::none().with_rate(FaultSite::RingDoorbell, 1.0);
            let cfg = SimConfig::new(CcMode::On)
                .with_seed(seed)
                .with_fault_plan(plan)
                .with_recovery(RecoveryPolicy::Retry {
                    max_attempts,
                    base: SimDuration::micros(20),
                    multiplier: 2.0,
                });
            let mut ctx = CudaContext::new(cfg);
            let desc = KernelDesc::new(KernelId(0), SimDuration::micros(50));
            let err = ctx
                .launch_kernel(&desc, ctx.default_stream())
                .expect_err("rate-1.0 ring flap with bounded retry must abort");
            match err {
                RuntimeError::Unrecoverable { site, attempts } => {
                    ensure_eq!(site, FaultSite::RingDoorbell);
                    ensure_eq!(attempts, max_attempts + 1);
                }
                other => ensure!(false, "expected Unrecoverable, got {other}"),
            }
            let counts = ctx.fault_counts();
            ensure!(counts.aborted > 0, "abort not counted");
            ensure_eq!(counts.recovered, 0);
        }
    );
}

/// Under a 100%-rate plan at the degradable sites (GCM tag both
/// directions, bounce exhaustion), the `Degrade` policy never retries and
/// never aborts: every guarded staging operation degrades to smaller
/// chunks, the round trip still returns the exact payload, and the
/// ledger shows `degraded == injected` with zero retries.
#[test]
fn degrade_absorbs_full_rate_storms_at_degradable_sites() {
    forall!(
        Config::new(0xC4A0_0002).with_cases(CASES),
        (payload, seed) in (vecs(bytes(), 1..4096), u64s(0..u64::MAX)) => {
            let plan = FaultPlan::none()
                .with_rate(FaultSite::GcmTagH2D, 1.0)
                .with_rate(FaultSite::GcmTagD2H, 1.0)
                .with_rate(FaultSite::BounceExhausted, 1.0);
            let cfg = SimConfig::new(CcMode::On)
                .with_seed(seed)
                .with_fault_plan(plan)
                .with_recovery(RecoveryPolicy::Degrade {
                    min_chunk: ByteSize::kib(64),
                });
            let mut ctx = CudaContext::new(cfg);
            let d = ctx.malloc_device(ByteSize::kib(4)).unwrap();
            ctx.upload_bytes(d, &payload).unwrap();
            let back = ctx.download_bytes(d, payload.len() as u64).unwrap();
            ensure_eq!(back, payload);

            let counts = ctx.fault_counts();
            ensure!(counts.injected > 0, "no fault injected at rate 1.0");
            ensure_eq!(counts.degraded, counts.injected);
            ensure_eq!(counts.retries, 0);
            ensure_eq!(counts.recovered, 0);
            ensure_eq!(counts.aborted, 0);
        }
    );
}

/// Storm calendars are a pure function of `(seed, horizon, episodes)`:
/// regenerating replays the identical window list and fingerprint, and
/// every calendar tiles `[0, horizon)` contiguously — no gaps, no
/// overlap — with coverage summing exactly to the horizon.
#[test]
fn storm_schedules_replay_and_tile_the_horizon() {
    forall!(
        Config::new(0xC4A0_0003).with_cases(CASES),
        (seed, secs, episodes) in (u64s(0..u64::MAX), u64s(1..2000), u64s(0..96)) => {
            let horizon = SimDuration::secs(secs);
            let a = StormSchedule::generate(seed, horizon, episodes as u32);
            let b = StormSchedule::generate(seed, horizon, episodes as u32);
            ensure_eq!(a, b);
            ensure_eq!(a.fingerprint(), b.fingerprint());

            let horizon_t = SimTime::from_nanos(horizon.as_nanos());
            ensure!(!a.windows.is_empty(), "nonzero horizon must be covered");
            ensure_eq!(a.windows[0].start, SimTime::ZERO);
            ensure_eq!(a.windows.last().unwrap().end, horizon_t);
            for pair in a.windows.windows(2) {
                ensure_eq!(pair[0].end, pair[1].start);
                ensure!(pair[0].start < pair[0].end, "empty window emitted");
            }
            let covered = a
                .coverage()
                .iter()
                .fold(SimDuration::ZERO, |acc, d| acc + *d);
            ensure_eq!(covered, horizon);

            // Sampling agrees with the window list at every boundary.
            for w in &a.windows {
                ensure_eq!(a.intensity_at(w.start), w.intensity);
            }
            ensure_eq!(a.intensity_at(horizon_t), StormIntensity::Calm);
        }
    );
}

/// Reseeding moves the calendar: for a fixed (horizon, episodes) shape
/// with at least one episode, distinct seeds must produce distinct
/// fingerprints across a spread of seeds (collisions at every seed would
/// mean the seed is ignored).
#[test]
fn storm_schedule_reacts_to_the_seed() {
    let horizon = SimDuration::secs(120);
    let base = StormSchedule::generate(0, horizon, 12);
    let mut moved = 0;
    for seed in 1..=16u64 {
        if StormSchedule::generate(seed, horizon, 12).fingerprint() != base.fingerprint() {
            moved += 1;
        }
    }
    assert!(
        moved >= 15,
        "only {moved}/16 reseeded calendars differ from seed 0"
    );
}
