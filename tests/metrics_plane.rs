//! The virtual-time metrics plane's cross-stack contracts:
//!
//! 1. **Attribution audit** — on every standard app in both modes, the
//!    integrated runtime queue gauges must reproduce the paper-model
//!    phase totals (Σ launch-queue time = LQT, Σ kernel-queue time =
//!    KQT, Σ kernel activity = KET) within 0.1%.
//! 2. **Observation is free** — the same scenario with metrics on and
//!    off produces bit-identical timelines.
//! 3. **Perfetto export** — an obs-enabled run's Chrome trace carries
//!    counter tracks for every layer (engine FIFOs, ring, bounce pool,
//!    UVM faults).
//! 4. **Replay determinism** — obs-enabled snapshots are bit-identical
//!    across engine worker counts.

use hcc_bench::engine::ExperimentEngine;
use hcc_bench::figures;
use hcc_trace::ChromeExport;
use hcc_types::{CcMode, SimDuration};
use hcc_workloads::{runner, suites, Scenario};

fn obs_scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for spec in suites::all() {
        for cc in CcMode::ALL {
            out.push(Scenario::standard(
                spec.name,
                figures::cfg(cc).with_metrics(true),
            ));
        }
    }
    out
}

/// |a - b| within 0.1% of the larger (absolute floor of 1ns for zeros).
fn close(a: SimDuration, b: SimDuration) -> bool {
    let (a, b) = (a.as_nanos(), b.as_nanos());
    let diff = a.abs_diff(b);
    diff * 1000 <= a.max(b) || diff <= 1
}

/// Acceptance: Σ queue-time from the gauges ≈ LQT + KQT from the trace,
/// per phase, across the full fig03 population.
#[test]
fn attribution_audit_queue_integrals_match_phase_totals() {
    let engine = ExperimentEngine::new(4);
    let batch = obs_scenarios();
    for result in engine.run_all(&batch) {
        let run = result.expect_run();
        let set = run.metrics.as_ref().expect("metrics enabled");
        let lm = run.timeline.launch_metrics();
        let label = result.label.clone();

        let lq = set.gauge_integral("runtime.launch_queue").unwrap();
        let kq = set.gauge_integral("runtime.kernel_queue").unwrap();
        let ka = set.gauge_integral("runtime.kernel_active").unwrap();
        assert!(
            close(lq, lm.total_lqt()),
            "{label}: launch_queue integral {lq} vs LQT {}",
            lm.total_lqt()
        );
        assert!(
            close(kq, lm.total_kqt()),
            "{label}: kernel_queue integral {kq} vs KQT {}",
            lm.total_kqt()
        );
        assert!(
            close(ka, lm.total_ket()),
            "{label}: kernel_active integral {ka} vs KET {}",
            lm.total_ket()
        );
        // The combined queue account the audit is named for.
        let queue_sum = lq + kq;
        let phase_sum = lm.total_lqt() + lm.total_kqt();
        assert!(
            close(queue_sum, phase_sum),
            "{label}: Σ queue-time {queue_sum} vs LQT+KQT {phase_sum}"
        );
        // Gauges are conservation-balanced: everything queued eventually
        // drained.
        for name in [
            "runtime.launch_queue",
            "runtime.kernel_queue",
            "runtime.inflight",
            "gpu.ring.occupancy",
            "tee.bounce.occupancy",
            "uvm.outstanding_faults",
        ] {
            let s = set.gauge_series(name).unwrap();
            assert_eq!(s.final_value(), 0, "{label}: {name} did not drain");
        }
    }
}

/// Metrics only observe: the simulated trace is bit-identical with the
/// plane on and off (spot-checked on representative apps; the tier-2
/// smoke diffs full figure stdout).
#[test]
fn metrics_do_not_perturb_the_simulation() {
    for app in ["gemm", "kmeans-uvm", "stream-triad"] {
        let Some(spec) = suites::by_name(app) else {
            continue;
        };
        for cc in CcMode::ALL {
            let off = runner::run(&spec, figures::cfg(cc)).unwrap();
            let on = runner::run(&spec, figures::cfg(cc).with_metrics(true)).unwrap();
            assert_eq!(
                off.timeline, on.timeline,
                "{app} [{cc}]: metrics changed the trace"
            );
            assert_eq!(off.end, on.end);
            assert!(off.metrics.is_none() && on.metrics.is_some());
        }
    }
}

/// Acceptance: the Chrome export of an obs-enabled run contains counter
/// tracks for at least compute queue, copy queue, ring occupancy, bounce
/// occupancy, and outstanding UVM faults.
#[test]
fn chrome_export_carries_counter_tracks_for_every_layer() {
    let spec = suites::by_name("kmeans-uvm").expect("suite app");
    let run = runner::run(&spec, figures::cfg(CcMode::On).with_metrics(true)).unwrap();
    let set = run.metrics.as_ref().unwrap();
    let trace = ChromeExport::new().with_metrics(set).render(&run.timeline);
    for track in [
        "gpu.compute.queue",
        "gpu.copy-h2d.queue",
        "gpu.ring.occupancy",
        "tee.bounce.occupancy",
        "uvm.outstanding_faults",
    ] {
        let needle = format!("\"name\": \"{track}\", \"cat\": \"metric\", \"ph\": \"C\"");
        assert!(
            trace.contains(&needle),
            "missing counter track {track} in Chrome export"
        );
    }
    // Counter events live on the dedicated metrics "process".
    assert!(trace.contains("\"pid\": \"metrics\""));
}

/// Acceptance: seeded obs-enabled runs replay bit-for-bit at any worker
/// count — snapshots included.
#[test]
fn obs_enabled_snapshots_replay_across_worker_counts() {
    let batch = obs_scenarios();
    let serial = ExperimentEngine::new(1).run_all(&batch);
    let parallel = ExperimentEngine::new(4).run_all(&batch);
    for (s, p) in serial.iter().zip(&parallel) {
        let s = s.expect_run();
        let p = p.expect_run();
        assert_eq!(s.timeline, p.timeline, "timeline diverged");
        assert_eq!(s.metrics, p.metrics, "metrics snapshot diverged");
    }
}
