//! The analytic planners in `hcc-core` must agree with the event-level
//! simulator they plan for — planner estimates are only useful if the
//! simulated system actually behaves the way they predict.

use hcc::core::{FusionPlanner, OverlapPlanner};
use hcc::prelude::*;
use hcc::types::calib::Calibration;
use hcc::workloads::micro;

#[test]
fn fusion_planner_tracks_simulated_sweep() {
    let planner = FusionPlanner::new(Calibration::paper(), CcMode::On);
    let total_ket = SimDuration::millis(20);
    // Single-launch runs are dominated by first-launch storms (a
    // stochastic 8% event); compare where the steady state matters.
    for launches in [8u32, 64, 512] {
        let est = planner.estimate(total_ket, launches);
        let sim = micro::run_fusion_sweep(SimConfig::new(CcMode::On), total_ket, launches);
        // Steady-state per-launch KLO within 50% (median vs the planner's
        // expectation; the stochastic storms are the Fig. 11a tail, which
        // the planner deliberately does not model).
        let per_ket = total_ket / u64::from(launches);
        let records = micro::run_back_to_back(SimConfig::new(CcMode::On), launches, 0, per_ket);
        let mut warm: Vec<SimDuration> =
            records.iter().filter(|r| !r.first).map(|r| r.klo).collect();
        warm.sort_unstable();
        let sim_median = warm[warm.len() / 2];
        let ratio = est.steady_klo / sim_median;
        assert!(
            (0.6..=1.6).contains(&ratio),
            "launches {launches}: planner steady KLO {} vs sim median {}",
            est.steady_klo,
            sim_median
        );
        // Span within 60% for the launch-bound high-split points.
        if launches >= 64 {
            let span_ratio = est.est_span / sim.span;
            assert!(
                (0.5..=1.6).contains(&span_ratio),
                "launches {launches}: planner span {} vs sim {}",
                est.est_span,
                sim.span
            );
        }
    }
}

#[test]
fn fusion_planner_recommendation_beats_naive_extremes_in_simulation() {
    let planner = FusionPlanner::new(Calibration::paper(), CcMode::On);
    let total_ket = SimDuration::millis(5);
    let plan = planner.recommend(total_ket, 1024);
    let best_sim =
        micro::run_fusion_sweep(SimConfig::new(CcMode::On), total_ket, plan.best.launches);
    let max_split_sim = micro::run_fusion_sweep(SimConfig::new(CcMode::On), total_ket, 1024);
    assert!(
        best_sim.span < max_split_sim.span,
        "recommended {} launches ({}) must beat 1024 launches ({})",
        plan.best.launches,
        best_sim.span,
        max_split_sim.span
    );
}

#[test]
fn overlap_planner_direction_matches_simulation() {
    let planner = OverlapPlanner::new(Calibration::paper(), CcMode::On);
    let total = ByteSize::mib(512);
    for (ket, streams) in [
        (SimDuration::millis(1), 16u32),
        (SimDuration::millis(100), 16),
    ] {
        let est = planner.estimate(total, ket, streams);
        let sim = micro::run_overlap(SimConfig::new(CcMode::On), streams, total, ket)
            .expect("overlap run");
        // Speedups agree within 2x (the planner's pipeline model is
        // coarser than the engine-level simulation).
        let ratio = est.speedup() / sim.speedup();
        assert!(
            (0.5..=2.0).contains(&ratio),
            "ket {ket}: planner x{:.2} vs sim x{:.2}",
            est.speedup(),
            sim.speedup()
        );
    }
    // And both agree base-mode overlap at short KET beats CC overlap.
    let base_planner = OverlapPlanner::new(Calibration::paper(), CcMode::Off);
    let ket = SimDuration::millis(1);
    assert!(
        base_planner.estimate(total, ket, 64).speedup()
            > planner.estimate(total, ket, 64).speedup()
    );
}

#[test]
fn crypto_worker_planning_matches_runtime() {
    // The overlap planner's worker model and the runtime's must rank
    // configurations identically.
    let time_with_workers = |workers: u32| {
        let mut ctx = CudaContext::new(SimConfig::new(CcMode::On).with_crypto_workers(workers));
        let h = ctx
            .malloc_host(ByteSize::mib(256), HostMemKind::Pageable)
            .expect("host");
        let d = ctx.malloc_device(ByteSize::mib(256)).expect("device");
        ctx.memcpy_h2d(d, h, ByteSize::mib(256)).expect("copy")
    };
    let planner_time = |workers: u32| {
        OverlapPlanner::new(Calibration::paper(), CcMode::On)
            .with_crypto_workers(workers)
            .estimate(ByteSize::mib(256), SimDuration::from_nanos(1), 1)
            .overlapped
    };
    let mut last_sim = SimDuration::secs(3600);
    let mut last_plan = SimDuration::secs(3600);
    for workers in [1u32, 2, 4, 8] {
        let sim = time_with_workers(workers);
        let plan = planner_time(workers);
        assert!(sim < last_sim, "runtime must improve with workers");
        assert!(plan < last_plan, "planner must improve with workers");
        last_sim = sim;
        last_plan = plan;
    }
}
