//! Golden snapshot + health contracts for the chaos lab.
//!
//! One fixed soak (seed `0xC4A0_55ED`, 2 tenants, 2 GPUs, 1500 requests
//! per cell, 3 virtual days, both default storm profiles, all three
//! recovery policies) is frozen byte-for-byte in
//! `tests/golden/chaos_report.txt` so any drift in the storm calendars,
//! fault-plan seeding, scheduler decisions, verdict math, or text
//! rendering is caught immediately. On top of the snapshot, the run must
//! be thread-count invariant, leak-free, exactly conserving, and the
//! fixture must exercise both verdict polarities (at least one PASS and
//! at least one FAIL), so the SLO gate is demonstrably live.
//!
//! To bless a deliberate change:
//! `HCC_BLESS=1 cargo test --test chaos_soak`.

use std::path::PathBuf;

use hcc_bench::chaos::{self, ChaosConfig, ChaosReport};
use hcc_bench::engine::ExperimentEngine;

/// The frozen fixture: defaults (both storm profiles, all three
/// policies, diurnal arrivals) narrowed to 1500 requests per cell over 3
/// virtual days on a 2-GPU cluster.
fn fixture() -> ChaosConfig {
    ChaosConfig {
        requests: 1_500,
        days: 8,
        gpus: 2,
        ..ChaosConfig::default()
    }
}

fn report() -> ChaosReport {
    chaos::run(&fixture(), &ExperimentEngine::new(2))
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/chaos_report.txt")
}

#[test]
fn chaos_report_matches_golden_snapshot() {
    let text = report().render();
    let path = golden_path();
    if std::env::var_os("HCC_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless with HCC_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        text, golden,
        "chaos report drifted from the golden snapshot; \
         if intentional, re-bless with HCC_BLESS=1"
    );
}

/// The soak renders byte-identically on 1 and 4 worker threads: nothing
/// on the report path reads wall time or thread identity.
#[test]
fn chaos_report_is_thread_count_invariant() {
    let a = chaos::run(&fixture(), &ExperimentEngine::new(1));
    let b = chaos::run(&fixture(), &ExperimentEngine::new(4));
    assert_eq!(a.render(), b.render());
}

/// The frozen soak is healthy (leak-free, conserving, exact latency
/// identity, sessions and gauges drained) *and* the verdict gate is
/// live: at least one tenant budget passes and at least one fails, so a
/// regression can move the needle in either direction and be seen.
#[test]
fn fixture_is_healthy_and_exercises_both_verdict_polarities() {
    let rep = report();
    assert!(rep.healthy(), "{:?}", rep.first_violation());
    assert!(rep.leak_free());
    assert!(rep.latency_identity());
    assert!(rep.conserved());
    assert!(rep.fault_conserved());
    assert!(rep.sessions_ok());
    assert!(rep.gauges_drained());

    let (pass, fail) = rep.verdict_counts();
    assert!(pass > 0, "fixture produced no PASS verdict");
    assert!(
        fail > 0,
        "fixture produced no FAIL verdict; the SLO gate is untested"
    );

    // Every cell pushed the full trace through: no quiet cells.
    for cell in rep.cells() {
        assert!(cell.ledger.total() == fixture().requests);
    }
}
