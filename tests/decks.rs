//! The shipped example decks must parse, run in both modes, and show the
//! behaviours they advertise.

use hcc::prelude::*;
use hcc::workloads::{parse_workload, runner};

const STREAMING_CONV: &str = include_str!("../decks/streaming_conv.hcc");
const BATCH_TRAINER: &str = include_str!("../decks/batch_trainer.hcc");
const UVM_STENCIL: &str = include_str!("../decks/uvm_stencil.hcc");

#[test]
fn streaming_conv_is_launch_bound_and_cc_sensitive() {
    let spec = parse_workload(STREAMING_CONV).expect("deck parses");
    assert_eq!(spec.launch_count(), 254);
    let base = runner::run(&spec, SimConfig::new(CcMode::Off)).expect("base run");
    let cc = runner::run(&spec, SimConfig::new(CcMode::On)).expect("cc run");
    let analysis = hcc::core::KlrAnalysis::of(&base.timeline.launch_metrics());
    assert_eq!(
        analysis.class,
        hcc::core::KlrClass::Low,
        "klr {}",
        analysis.klr
    );
    assert!(cc.end > base.end);
}

#[test]
fn batch_trainer_syncs_every_step() {
    let spec = parse_workload(BATCH_TRAINER).expect("deck parses");
    assert_eq!(spec.launch_count(), 4);
    let r = runner::run(&spec, SimConfig::new(CcMode::On)).expect("run");
    let lm = r.timeline.launch_metrics();
    // Per-step syncs keep each kernel's queueing at the dispatch floor.
    for k in &lm.kernels {
        assert!(k.kqt < SimDuration::micros(20), "kqt {}", k.kqt);
    }
}

#[test]
fn uvm_stencil_faults_cold_then_runs_warm() {
    let spec = parse_workload(UVM_STENCIL).expect("deck parses");
    assert!(spec.uvm);
    let r = runner::run(&spec, SimConfig::new(CcMode::On)).expect("run");
    let lm = r.timeline.launch_metrics();
    assert_eq!(lm.kernels.len(), 6);
    // First (cold) kernel pays encrypted paging; warm reruns do not.
    let cold = lm.kernels[0].ket;
    let warm = lm.kernels[3].ket;
    assert!(cold > warm * 10, "cold {cold} vs warm {warm}");
    assert!(r.uvm.faults > 0);
}
