//! Cross-crate integration tests: determinism, model validation, the
//! functional crypto path through the full runtime, and figure-harness
//! shape checks.

use hcc::prelude::*;
use hcc::runtime::KernelDesc;
use hcc::trace::KernelId;
use hcc::workloads::{runner, suites};
use hcc_bench::figures::{fig01, fig03, fig04b, fig06, fig11, fig13, fig14};

#[test]
fn identical_seeds_reproduce_identical_traces_across_the_suite() {
    for name in ["sc", "gemm", "dwt2d", "cnn"] {
        let spec = suites::by_name(name).expect("known app");
        for cc in CcMode::ALL {
            let a = runner::run(&spec, SimConfig::new(cc).with_seed(42)).expect("run");
            let b = runner::run(&spec, SimConfig::new(cc).with_seed(42)).expect("run");
            assert_eq!(a.timeline, b.timeline, "{name} [{cc}]");
        }
    }
}

#[test]
fn different_seeds_differ_but_preserve_structure() {
    let spec = suites::by_name("hotspot").expect("known app");
    let a = runner::run(&spec, SimConfig::new(CcMode::On).with_seed(1)).expect("run");
    let b = runner::run(&spec, SimConfig::new(CcMode::On).with_seed(2)).expect("run");
    assert_ne!(a.end, b.end);
    assert_eq!(
        a.timeline.launch_metrics().launch_count(),
        b.timeline.launch_metrics().launch_count()
    );
}

#[test]
fn model_explains_every_app_within_tolerance() {
    for row in fig03::rows() {
        assert!(
            row.error < 0.15,
            "{} [{}]: model error {:.1}%",
            row.app,
            row.cc,
            row.error * 100.0
        );
    }
}

#[test]
fn overview_breakdown_ranks_scenarios() {
    let rows = fig01::rows();
    assert_eq!(rows.len(), 3);
    // CC-on is slower than CC-off; CC+UVM kernel phase dwarfs both.
    assert!(rows[1].breakdown.span > rows[0].breakdown.span);
    assert!(rows[2].breakdown.kernel > rows[1].breakdown.kernel);
}

#[test]
fn fig04b_table_is_complete_and_ordered() {
    let entries = fig04b::entries(false);
    // 2 CPUs x 6 algorithms.
    assert_eq!(entries.len(), 12);
    for cpu in hcc::types::CpuModel::ALL {
        let ghash = entries
            .iter()
            .find(|e| e.cpu == cpu && e.alg == hcc::crypto::CryptoAlgorithm::Ghash)
            .expect("ghash entry");
        let gcm = entries
            .iter()
            .find(|e| e.cpu == cpu && e.alg == hcc::crypto::CryptoAlgorithm::AesGcm128)
            .expect("gcm entry");
        assert!(ghash.modeled_gbs > gcm.modeled_gbs);
    }
}

#[test]
fn fig06_ratios_track_the_paper() {
    let r = fig06::ratios(ByteSize::mib(64), 30);
    let targets = [5.72, 5.67, 10.54, 5.43, 3.35];
    for (got, want) in r.iter().zip(targets.iter()) {
        assert!(
            (got - want).abs() / want < 0.15,
            "management ratio {got:.2} vs paper {want}"
        );
    }
}

#[test]
fn fig11_cdfs_shift_right_under_cc() {
    let (klo, ket) = fig11::klo_and_ket();
    // KLO distribution shifts right under CC...
    assert!(klo.cc.quantile(0.5) > klo.base.quantile(0.5));
    assert!(klo.cc.mean() > klo.base.mean());
    // ...while KET stays put (within 1%).
    let ket_ratio = ket.cc.mean() / ket.base.mean();
    assert!((ket_ratio - 1.0).abs() < 0.01, "KET mean ratio {ket_ratio}");
}

#[test]
fn fig13_grid_covers_models_and_shows_cc_drop() {
    let rows = fig13::rows();
    assert!(rows.len() >= 6 * 2 * 2 * 2);
    for m in hcc::ml::MODELS {
        let base = rows
            .iter()
            .find(|r| {
                r.model == m.name
                    && r.batch == 64
                    && r.cc == CcMode::Off
                    && r.precision == hcc::core::Precision::Fp32
            })
            .expect("base cell");
        let cc = rows
            .iter()
            .find(|r| {
                r.model == m.name
                    && r.batch == 64
                    && r.cc == CcMode::On
                    && r.precision == hcc::core::Precision::Fp32
            })
            .expect("cc cell");
        assert!(cc.throughput < base.throughput, "{}", m.name);
        assert!(cc.norm_time > base.norm_time, "{}", m.name);
    }
}

#[test]
fn fig14_grid_is_all_above_one() {
    for cell in fig14::grid() {
        assert!(
            cell.speedup > 1.0,
            "batch {} {:?}",
            cell.batch,
            cell.precision
        );
    }
}

#[test]
fn functional_cc_path_preserves_data_and_detects_growth() {
    let mut ctx = CudaContext::new(SimConfig::new(CcMode::On));
    let dev = ctx.malloc_device(ByteSize::kib(64)).expect("alloc");
    let payload: Vec<u8> = (0..65536u32).map(|i| (i % 251) as u8).collect();
    ctx.upload_bytes(dev, &payload).expect("upload");
    let back = ctx
        .download_bytes(dev, payload.len() as u64)
        .expect("download");
    assert_eq!(back, payload);
    // The TD paid real transition costs for this.
    assert!(ctx.td_counters().hypercalls > 0);
    assert!(ctx.td_counters().transition_time > SimDuration::ZERO);
}

#[test]
fn graph_capture_replays_faster_than_launch_loops_under_cc() {
    use hcc::runtime::CudaGraph;
    let mut ctx = CudaContext::new(SimConfig::new(CcMode::On));
    let mut graph = CudaGraph::new();
    for _ in 0..254 {
        graph.add_kernel(KernelDesc::new(KernelId(0), SimDuration::micros(8)));
    }
    let exec = ctx.instantiate_graph(&graph);
    let t0 = ctx.now();
    for _ in 0..20 {
        ctx.launch_graph(&exec, ctx.default_stream())
            .expect("graph launch");
    }
    ctx.synchronize();
    let graph_time = ctx.now() - t0;

    let mut loop_ctx = CudaContext::new(SimConfig::new(CcMode::On));
    let desc = KernelDesc::new(KernelId(0), SimDuration::micros(8));
    let t0 = loop_ctx.now();
    for _ in 0..20 * 254 {
        loop_ctx
            .launch_kernel(&desc, loop_ctx.default_stream())
            .expect("launch");
    }
    loop_ctx.synchronize();
    let loop_time = loop_ctx.now() - t0;
    // Graph replays land near the pure-KET floor (~40 ms here); the
    // launch loop pays ~26 ms of launch path on top.
    assert!(
        graph_time.as_secs_f64() < loop_time.as_secs_f64() * 0.75,
        "graphs {graph_time} vs loop {loop_time}"
    );
}

#[test]
fn crypto_workers_restore_most_of_the_lost_bandwidth() {
    // The PipeLLM-style optimization: parallel transfer encryption.
    let size = ByteSize::mib(512);
    let measure = |workers: u32| {
        let mut ctx = CudaContext::new(SimConfig::new(CcMode::On).with_crypto_workers(workers));
        let h = ctx.malloc_host(size, HostMemKind::Pageable).expect("host");
        let d = ctx.malloc_device(size).expect("device");
        let t = ctx.memcpy_h2d(d, h, size).expect("copy");
        size.as_gb_f64() / t.as_secs_f64()
    };
    let one = measure(1);
    let eight = measure(8);
    assert!(one < 3.5, "stock CC bandwidth {one} GB/s");
    assert!(eight > 8.0, "8-worker CC bandwidth {eight} GB/s");
}
