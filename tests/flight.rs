//! Contracts for the request flight recorder on the canonical soaks.
//!
//! The per-request span identity (Σ spans == settle − arrival, integer
//! virtual time, no gaps or overlaps) must hold for every exemplar the
//! sampler keeps on a real stormy soak; every watchtower incident must
//! link to at least one concrete exemplar request id resolvable back to
//! a waterfall; the exemplar store must respect its hard memory bound;
//! the whole plane must be thread-count invariant and — when disabled —
//! perturbation-free: not a single byte of the soak's own figures moves.

use hcc_bench::engine::ExperimentEngine;
use hcc_bench::watch::{calm_soak, stormy_soak, WatchReport};
use hcc_bench::{chaos, serving};
use hcc_trace::{FlightConfig, FlightLog};
use hcc_types::json::ToJson;

fn stormy_flight(threads: usize) -> (WatchReport, FlightLog) {
    let mut cfg = stormy_soak();
    cfg.flight = Some(FlightConfig::default());
    let rep = chaos::run(&cfg, &ExperimentEngine::new(threads));
    assert!(rep.healthy(), "stormy flight soak must stay healthy");
    let cell = rep
        .profiles
        .into_iter()
        .next()
        .and_then(|p| p.cells.into_iter().next())
        .expect("one policy cell");
    (
        cell.watch.expect("stormy fixture enables the watch plane"),
        cell.flight.expect("flight plane enabled"),
    )
}

fn calm_flight(threads: usize) -> FlightLog {
    let mut cfg = calm_soak();
    cfg.flight = Some(FlightConfig::default());
    let rep = serving::run(&cfg, &ExperimentEngine::new(threads));
    assert!(rep.conserved());
    rep.runs
        .into_iter()
        .next()
        .and_then(|r| r.flight)
        .expect("flight plane enabled")
}

/// The tentpole invariant on a real soak: every kept exemplar's spans
/// partition `settle − arrival` exactly, and the store never exceeds
/// its `windows × (worst + reservoir)` bound.
#[test]
fn stormy_flight_log_holds_the_span_identity() {
    let (_, flight) = stormy_flight(2);
    assert!(flight.recorded > 0, "stormy soak recorded no requests");
    assert!(!flight.samples.is_empty(), "sampler kept no exemplars");
    for s in &flight.samples {
        assert!(
            s.identity_holds(),
            "request #{} violates the span identity",
            s.req()
        );
    }
    assert!(flight.identity_holds());
    assert!(
        flight.kept_entries <= flight.entry_bound(),
        "exemplar store {} exceeds bound {}",
        flight.kept_entries,
        flight.entry_bound()
    );
}

/// Serving side of the same identity, on the calm CC-on soak.
#[test]
fn calm_flight_log_holds_the_span_identity() {
    let flight = calm_flight(2);
    assert!(!flight.samples.is_empty());
    assert!(flight.identity_holds());
    assert!(flight.kept_entries <= flight.entry_bound());
}

/// Every incident the stormy watchtower raises links to at least one
/// concrete exemplar request id, and every linked id resolves to a kept
/// waterfall — the `why --incident` contract.
#[test]
fn every_stormy_incident_links_to_a_resolvable_exemplar() {
    let (watch, flight) = stormy_flight(2);
    assert!(
        !watch.incidents.is_empty(),
        "stormy soak raised no incidents"
    );
    for inc in &watch.incidents {
        assert!(
            !inc.exemplars.is_empty(),
            "incident #{} links no exemplar",
            inc.id
        );
        for &req in &inc.exemplars {
            let sample = flight
                .find(req)
                .unwrap_or_else(|| panic!("incident #{} exemplar #{req} not kept", inc.id));
            assert!(sample.identity_holds());
            assert!(
                inc.start <= sample.skeleton.settle && sample.skeleton.settle < inc.end,
                "exemplar #{req} settled outside incident #{}",
                inc.id
            );
        }
    }
}

/// The flight log — samples, spans, exemplar flags, store accounting —
/// replays byte-identically on 1 and 4 worker threads; so does every
/// rendered waterfall. Nothing on the flight path reads wall time or
/// thread identity.
#[test]
fn flight_log_is_thread_count_invariant() {
    let (watch1, flight1) = stormy_flight(1);
    let (watch4, flight4) = stormy_flight(4);
    assert_eq!(flight1.to_json().to_string(), flight4.to_json().to_string());
    assert_eq!(
        watch1.to_json().to_string(),
        watch4.to_json().to_string(),
        "incident exemplar links drifted across thread counts"
    );
    for (a, b) in flight1.samples.iter().zip(&flight4.samples) {
        let base1 = flight1.p50_exemplar(a.window);
        let base4 = flight4.p50_exemplar(b.window);
        assert_eq!(
            flight1.render_waterfall(a, base1),
            flight4.render_waterfall(b, base4)
        );
    }
}

/// Perturbation-freedom, chaos side: enabling the flight plane must not
/// move a single byte of the soak's own figures. Rendering the
/// flight-enabled report with its flight logs (and exemplar links)
/// stripped reproduces the flight-off render exactly.
#[test]
fn flight_plane_is_perturbation_free_for_chaos_soaks() {
    let engine = ExperimentEngine::new(2);
    let mut cfg = stormy_soak();
    cfg.flight = Some(FlightConfig::default());
    let with_flight = {
        let mut rep = chaos::run(&cfg, &engine);
        for p in &mut rep.profiles {
            for c in &mut p.cells {
                assert!(c.flight.is_some());
                c.flight = None;
                if let Some(w) = &mut c.watch {
                    for inc in &mut w.incidents {
                        inc.exemplars.clear();
                    }
                }
            }
        }
        rep.render()
    };
    cfg.flight = None;
    let without = chaos::run(&cfg, &engine).render();
    assert_eq!(
        with_flight, without,
        "flight plane perturbed the chaos figures"
    );
}

/// Perturbation-freedom, serving side.
#[test]
fn flight_plane_is_perturbation_free_for_serving_soaks() {
    let engine = ExperimentEngine::new(2);
    let mut cfg = calm_soak();
    cfg.flight = Some(FlightConfig::default());
    let with_flight = {
        let mut rep = serving::run(&cfg, &engine);
        for r in &mut rep.runs {
            assert!(r.flight.is_some());
            r.flight = None;
            if let Some(w) = &mut r.watch {
                for inc in &mut w.incidents {
                    inc.exemplars.clear();
                }
            }
        }
        rep.render()
    };
    cfg.flight = None;
    let without = serving::run(&cfg, &engine).render();
    assert_eq!(
        with_flight, without,
        "flight plane perturbed the serving figures"
    );
}
