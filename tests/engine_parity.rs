//! The experiment engine's determinism contract: fanning scenarios out
//! across a worker pool and memoizing the results must be invisible in
//! the data — bit-identical timelines to direct serial `runner::run`
//! calls, for every app and mode, at any thread count. Plus an
//! `hcc-check` property that cache entries never cross scenarios with
//! different content hashes.

use std::sync::Arc;

use hcc_bench::engine::ExperimentEngine;
use hcc_bench::figures;
use hcc_check::strategy::{bools, u64s};
use hcc_check::{ensure, ensure_eq, forall, Config};
use hcc_runtime::SimConfig;
use hcc_types::{CcMode, SimDuration};
use hcc_workloads::{runner, suites, Op, Scenario, Suite, WorkloadSpec};

/// The parallel engine reproduces serial `runner::run` bit for bit across
/// the full standard population in both modes.
#[test]
fn parallel_engine_matches_serial_runner_everywhere() {
    let engine = ExperimentEngine::new(4);
    let mut scenarios = Vec::new();
    for spec in suites::all() {
        for cc in CcMode::ALL {
            scenarios.push(figures::scenario(spec.name, cc));
        }
    }
    let results = engine.run_all(&scenarios);

    let mut i = 0;
    for spec in suites::all() {
        for cc in CcMode::ALL {
            let serial = runner::run(&spec, figures::cfg(cc))
                .unwrap_or_else(|e| panic!("{} [{cc}]: {e}", spec.name));
            let engine_run = results[i].expect_run();
            assert_eq!(
                engine_run.timeline, serial.timeline,
                "{} [{cc}]: engine timeline diverged from serial run",
                spec.name
            );
            assert_eq!(engine_run.end, serial.end, "{} [{cc}]", spec.name);
            i += 1;
        }
    }
    assert_eq!(i, results.len());

    let stats = engine.stats();
    assert_eq!(stats.scenarios_run, results.len() as u64);
    assert_eq!(stats.cache_hits, 0, "population is duplicate-free");
}

/// Worker-pool width is invisible: 1 thread and 8 threads produce the
/// same timelines for the multi-launch population.
#[test]
fn thread_count_does_not_change_results() {
    let narrow = ExperimentEngine::new(1);
    let wide = ExperimentEngine::new(8);
    let mut scenarios = Vec::new();
    for spec in suites::multi_launch() {
        for cc in CcMode::ALL {
            scenarios.push(figures::scenario(spec.name, cc));
        }
    }
    for (n, w) in narrow
        .run_all(&scenarios)
        .iter()
        .zip(wide.run_all(&scenarios))
    {
        let n = n.expect_run();
        let w = w.expect_run();
        assert_eq!(n.timeline, w.timeline);
        assert_eq!(n.end, w.end);
    }
}

fn toy_scenario(ket_us: u64, repeat: u64, cc_on: bool) -> Scenario {
    let spec = WorkloadSpec {
        name: "parity-toy",
        suite: Suite::Micro,
        uvm: false,
        ops: vec![Op::Launch {
            kernel: 0,
            ket: SimDuration::micros(ket_us),
            managed: vec![],
            repeat: repeat as u32,
        }],
    };
    let cc = if cc_on { CcMode::On } else { CcMode::Off };
    Scenario::adhoc(spec, SimConfig::new(cc))
}

/// Cache-soundness property: hashes agree exactly when the scenario
/// fields agree, repeat lookups return the same memoized entry, every
/// entry's recorded hash matches its scenario, and scenarios with
/// different hashes never share an entry.
#[test]
fn cache_lookups_never_cross_scenario_hashes() {
    let engine = ExperimentEngine::new(2);
    forall!(
        Config::new(0x24_0E01).with_cases(24),
        (a, b) in (
            (u64s(1..20), u64s(1..4), bools()),
            (u64s(1..20), u64s(1..4), bools())
        ) => {
            let scn_a = toy_scenario(a.0, a.1, a.2);
            let scn_b = toy_scenario(b.0, b.1, b.2);
            let same_fields = a == b;
            ensure_eq!(scn_a.content_hash() == scn_b.content_hash(), same_fields);

            let res_a = engine.run(&scn_a);
            let res_b = engine.run(&scn_b);
            ensure_eq!(res_a.hash, scn_a.content_hash());
            ensure_eq!(res_b.hash, scn_b.content_hash());
            ensure_eq!(Arc::ptr_eq(&res_a, &res_b), same_fields);

            // A repeat lookup is a cache hit on the identical entry.
            let again = engine.run(&scn_a);
            ensure!(Arc::ptr_eq(&res_a, &again));
        }
    );
}
