//! Golden snapshot + contracts for the SLO watchtower.
//!
//! Both canonical soaks are frozen byte-for-byte in
//! `tests/golden/slo_watch.txt`: the stormy chaos-shaped soak (whose
//! peak windows must burn budgets into a storm-correlated incident
//! timeline) and the calm low-utilisation serving soak (whose timeline
//! must stay empty). Any drift in window layout, burn-rate math,
//! incident coalescing, storm correlation, blame attribution, or text
//! rendering is caught immediately. On top of the snapshot, the watch
//! plane must be thread-count invariant and perturbation-free: enabling
//! it must not move a single byte of the underlying soak figures.
//!
//! To bless a deliberate change:
//! `HCC_BLESS=1 cargo test --test slo_watch`.

use std::path::PathBuf;

use hcc_bench::engine::ExperimentEngine;
use hcc_bench::watch::{calm_soak, stormy_soak, WatchReport};
use hcc_bench::{chaos, serving};

fn stormy_watch(threads: usize) -> WatchReport {
    let rep = chaos::run(&stormy_soak(), &ExperimentEngine::new(threads));
    rep.profiles
        .into_iter()
        .next()
        .and_then(|p| p.cells.into_iter().next())
        .and_then(|c| c.watch)
        .expect("stormy fixture enables the watch plane")
}

fn calm_watch(threads: usize) -> WatchReport {
    let rep = serving::run(&calm_soak(), &ExperimentEngine::new(threads));
    rep.runs
        .into_iter()
        .next()
        .and_then(|r| r.watch)
        .expect("calm fixture enables the watch plane")
}

/// Both polarities in one snapshot: the stormy timeline full of
/// incidents, then the calm empty one.
fn snapshot(threads: usize) -> String {
    format!(
        "=== stormy: chaos crypto-burst / abort ===\n{}\n=== calm: serve fifo ===\n{}",
        stormy_watch(threads).render(),
        calm_watch(threads).render()
    )
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/slo_watch.txt")
}

#[test]
fn watch_reports_match_golden_snapshot() {
    let text = snapshot(2);
    let path = golden_path();
    if std::env::var_os("HCC_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless with HCC_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        text, golden,
        "watch report drifted from the golden snapshot; \
         if intentional, re-bless with HCC_BLESS=1"
    );
}

/// Every alert and incident replays byte-identically on 1 and 4 worker
/// threads: nothing on the watch path reads wall time or thread
/// identity.
#[test]
fn watch_reports_are_thread_count_invariant() {
    assert_eq!(snapshot(1), snapshot(4));
}

/// The stormy polarity: the default chaos-shaped soak produces a
/// non-empty incident timeline in which every incident names its
/// tenant, window span, burn rate, active storm episode, and top
/// blamed resource class.
#[test]
fn stormy_soak_produces_a_fully_attributed_incident_timeline() {
    let watch = stormy_watch(2);
    assert!(
        !watch.incidents.is_empty(),
        "stormy soak raised no incidents"
    );
    assert!(watch.alerts() > 0);
    for inc in &watch.incidents {
        assert!(
            inc.tenant < watch.tenant_names.len(),
            "incident names no tenant"
        );
        assert!(inc.first_window <= inc.last_window);
        assert!(inc.peak_burn_milli > 0, "incident #{} has no burn", inc.id);
        let storm = inc
            .storm
            .as_ref()
            .unwrap_or_else(|| panic!("incident #{} lost its storm context", inc.id));
        assert!(!storm.profile.is_empty());
        assert!(storm.episode >= 1, "episodes are 1-based ordinals");
        let blame = inc
            .blame
            .as_ref()
            .unwrap_or_else(|| panic!("incident #{} has no blame", inc.id));
        assert!(blame.pct <= 100);
    }
    assert_eq!(
        watch.storm_correlated(),
        watch.incidents.len(),
        "every stormy incident must correlate to a storm episode"
    );
}

/// The calm polarity: the low-utilisation serving soak burns no budget
/// and renders the explicit empty-timeline marker.
#[test]
fn calm_soak_renders_an_empty_timeline() {
    let watch = calm_watch(2);
    assert_eq!(watch.alerts(), 0, "calm soak must not alert");
    assert!(watch.incidents.is_empty());
    assert!(watch.render().contains("(no incidents)"));
}

/// Perturbation-freedom, chaos side: enabling the watch plane must not
/// move a single byte of the soak's own figures. Rendering the
/// watch-enabled report with its watch sections stripped reproduces the
/// watch-off render exactly.
#[test]
fn watch_plane_is_perturbation_free_for_chaos_soaks() {
    let engine = ExperimentEngine::new(2);
    let mut cfg = stormy_soak();
    let with_watch = {
        let mut rep = chaos::run(&cfg, &engine);
        for p in &mut rep.profiles {
            for c in &mut p.cells {
                assert!(c.watch.is_some());
                c.watch = None;
            }
        }
        rep.render()
    };
    cfg.watch = None;
    let without = chaos::run(&cfg, &engine).render();
    assert_eq!(
        with_watch, without,
        "watch plane perturbed the chaos figures"
    );
}

/// Perturbation-freedom, serving side.
#[test]
fn watch_plane_is_perturbation_free_for_serving_soaks() {
    let engine = ExperimentEngine::new(2);
    let mut cfg = calm_soak();
    let with_watch = {
        let mut rep = serving::run(&cfg, &engine);
        for r in &mut rep.runs {
            assert!(r.watch.is_some());
            r.watch = None;
        }
        rep.render()
    };
    cfg.watch = None;
    let without = serving::run(&cfg, &engine).render();
    assert_eq!(
        with_watch, without,
        "watch plane perturbed the serving figures"
    );
}
