//! Property-based contracts over the SLO watchtower (DESIGN.md §4):
//! the multi-window burn-rate alert rule, incident coalescing, and
//! perturbation-freedom of the rollup plane, checked with the in-repo
//! `hcc-check` harness. Every property pins its seed so CI failures
//! replay bit-for-bit (`HCC_CHECK_SEED=<seed>` overrides).

use hcc_bench::chaos::default_budgets;
use hcc_bench::watch::{observe, SoakView, WatchConfig};
use hcc_check::strategy::u64s;
use hcc_check::{ensure, ensure_eq, forall, Config};
use hcc_trace::rollup::CompletionSample;
use hcc_types::rng::Xoshiro256;
use hcc_types::{burn_rate_milli, LatencyBudget, SimDuration, SimTime};
use hcc_workloads::default_tenants;

/// A random but sorted completion stream over `tenants` tenants:
/// latencies straddle both tenants' p99 budgets and roughly one in
/// eight requests is rejected, so both bad-event paths are exercised.
fn synth_samples(seed: u64, n: usize, tenants: u32, span_ms: u64) -> Vec<CompletionSample> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut out: Vec<CompletionSample> = (0..n)
        .map(|i| {
            let at = SimTime::from_nanos(rng.next_range(span_ms.max(1) * 1_000_000));
            CompletionSample {
                req: i as u32,
                tenant: rng.next_range(u64::from(tenants)) as u32,
                at,
                latency: SimDuration::from_nanos(rng.next_range(600_000_000)),
                rejected: rng.next_range(8) == 0,
            }
        })
        .collect();
    out.sort_by_key(|s| (s.at, s.req));
    out
}

fn view<'a>(
    tenant_names: &'a [String],
    budgets: &'a [LatencyBudget],
    samples: &'a [CompletionSample],
    horizon: SimTime,
) -> SoakView<'a> {
    SoakView {
        tenant_names,
        budgets,
        samples,
        horizon,
        queue: None,
        storm: None,
        blame: None,
    }
}

/// The acceptance contract for the alert rule: a tenant's alert fires
/// in a window iff an independent recount of that window's bad events
/// shows the error budget burning at >= the threshold in BOTH the fast
/// window and the trailing slow window. The recount rebuilds the
/// per-window tallies from the raw samples with its own membership
/// test, sharing only `burn_rate_milli` with the implementation.
#[test]
fn alert_fires_iff_both_windows_burn_over_threshold() {
    let tenants = default_tenants(2);
    let names: Vec<String> = tenants.iter().map(|t| t.name.to_string()).collect();
    let budgets = default_budgets(&tenants);
    forall!(
        Config::new(0x5A7C_0001).with_cases(24),
        (seed, n, fast_ms, thr) in (
            u64s(0..u64::MAX),
            u64s(1..400),
            u64s(200..8_000),
            u64s(1_000..20_000)
        ) => {
            let samples = synth_samples(seed, n as usize, 2, 60_000);
            let cfg = WatchConfig {
                fast: SimDuration::from_nanos(fast_ms * 1_000_000),
                slow_factor: 1 + (seed % 8) as u32,
                threshold_milli: thr,
                anomaly_milli: 3_000,
            };
            let horizon = SimTime::from_nanos(60_000 * 1_000_000);
            let report = observe(&cfg, &view(&names, &budgets, &samples, horizon));
            ensure!(!report.windows.is_empty(), "soak produced no windows");

            let wn = report.windows.len();
            let mut bad = vec![vec![0u64; wn]; 2];
            let mut tot = vec![vec![0u64; wn]; 2];
            for s in &samples {
                let wi = report
                    .windows
                    .iter()
                    .position(|r| {
                        s.at >= r.stats.window.start && s.at < r.stats.window.end
                    });
                let Some(wi) = wi else {
                    ensure!(false, "sample at {} fell outside every window", s.at);
                    continue;
                };
                let t = s.tenant as usize;
                tot[t][wi] += 1;
                if s.rejected || s.latency > budgets[t].p99 {
                    bad[t][wi] += 1;
                }
            }

            let slow_n = cfg.slow_factor.max(1) as usize;
            for (wi, row) in report.windows.iter().enumerate() {
                for t in 0..2 {
                    let ppm = budgets[t].error_budget_ppm();
                    let fast = burn_rate_milli(bad[t][wi], tot[t][wi], ppm);
                    let lo = (wi + 1).saturating_sub(slow_n);
                    let slow = burn_rate_milli(
                        bad[t][lo..=wi].iter().sum(),
                        tot[t][lo..=wi].iter().sum(),
                        ppm,
                    );
                    let burn = &row.burns[t];
                    ensure_eq!(burn.fast_milli, fast);
                    ensure_eq!(burn.slow_milli, slow);
                    ensure!(
                        burn.alert
                            == (fast >= cfg.threshold_milli && slow >= cfg.threshold_milli),
                        "w{wi} tenant {t}: alert disagrees with recount \
                         (fast {fast}, slow {slow}, thr {})",
                        cfg.threshold_milli
                    );
                }
            }
        }
    );
}

/// Incidents are exactly the maximal alert streaks: their windows cover
/// every alerting window for their tenant, never a non-alerting one,
/// the windows flanking each streak do not alert, and ids run 1..=n in
/// (first window, tenant) order.
#[test]
fn incidents_are_exactly_the_maximal_alert_streaks() {
    let tenants = default_tenants(2);
    let names: Vec<String> = tenants.iter().map(|t| t.name.to_string()).collect();
    let budgets = default_budgets(&tenants);
    forall!(
        Config::new(0x5A7C_0002).with_cases(24),
        (seed, n) in (u64s(0..u64::MAX), u64s(1..500)) => {
            let samples = synth_samples(seed, n as usize, 2, 45_000);
            let cfg = WatchConfig::default();
            let horizon = SimTime::from_nanos(45_000 * 1_000_000);
            let report = observe(&cfg, &view(&names, &budgets, &samples, horizon));

            let mut covered = vec![[false; 2]; report.windows.len()];
            let mut prev_key = (0usize, 0usize);
            for (k, inc) in report.incidents.iter().enumerate() {
                ensure!(inc.id == k + 1, "incident ids must run 1..=n");
                let key = (inc.first_window, inc.tenant);
                ensure!(
                    k == 0 || key >= prev_key,
                    "timeline not in (first window, tenant) order"
                );
                prev_key = key;
                ensure!(inc.first_window <= inc.last_window, "inverted streak");
                for wi in inc.first_window..=inc.last_window {
                    ensure!(
                        report.windows[wi].burns[inc.tenant].alert,
                        "incident #{} covers non-alerting w{wi}",
                        inc.id
                    );
                    covered[wi][inc.tenant] = true;
                }
                // Maximality: the flanking windows must not alert.
                if inc.first_window > 0 {
                    ensure!(
                        !report.windows[inc.first_window - 1].burns[inc.tenant].alert,
                        "streak extends left of incident #{}",
                        inc.id
                    );
                }
                if inc.last_window + 1 < report.windows.len() {
                    ensure!(
                        !report.windows[inc.last_window + 1].burns[inc.tenant].alert,
                        "streak extends right of incident #{}",
                        inc.id
                    );
                }
            }
            for (wi, row) in report.windows.iter().enumerate() {
                for t in 0..2 {
                    ensure!(
                        row.burns[t].alert == covered[wi][t],
                        "alerting w{wi} tenant {t} missing from the timeline"
                    );
                }
            }
        }
    );
}

/// A calm stream — every latency inside both budgets, nothing rejected
/// — burns zero budget: no alerts, no incidents, max burn 0.
#[test]
fn calm_streams_never_alert() {
    let tenants = default_tenants(2);
    let names: Vec<String> = tenants.iter().map(|t| t.name.to_string()).collect();
    let budgets = default_budgets(&tenants);
    let floor = budgets.iter().map(|b| b.p99).min().unwrap();
    forall!(
        Config::new(0x5A7C_0003).with_cases(16),
        (seed, n) in (u64s(0..u64::MAX), u64s(1..400)) => {
            let mut samples = synth_samples(seed, n as usize, 2, 30_000);
            for s in &mut samples {
                s.rejected = false;
                s.latency = SimDuration::from_nanos(
                    s.latency.as_nanos() % floor.as_nanos().max(1),
                );
            }
            let cfg = WatchConfig::default();
            let horizon = SimTime::from_nanos(30_000 * 1_000_000);
            let report = observe(&cfg, &view(&names, &budgets, &samples, horizon));
            ensure_eq!(report.alerts(), 0);
            ensure_eq!(report.incidents.len(), 0);
            ensure_eq!(report.max_burn_milli(), 0);
        }
    );
}
